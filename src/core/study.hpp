// The full study driver: runs every clip pair of the Table 1 catalog over
// per-data-set network paths and aggregates the results all multi-clip
// figures consume.
#pragma once

#include <vector>

#include "core/experiment.hpp"

namespace streamlab {

struct StudyConfig {
  std::uint64_t seed = 2002;  ///< year of the study; any value reproduces deterministically
  WmBehavior wm;
  RmBehavior rm;
  Duration bandwidth_window = Duration::seconds(2);
  bool keep_captures = false;
  /// Pings per path when characterising the network (Figure 1).
  int ping_count = 10;
};

/// Per-data-set path parameters. The paper measured six distinct Internet
/// paths with 15-25 hops and RTTs from ~20 to 160 ms (Figures 1-2); these
/// values reproduce those distributions.
PathConfig path_for_data_set(int data_set, std::uint64_t seed);

struct StudyResults {
  StudyConfig config;
  std::vector<PairRunResult> runs;  ///< one per (set, tier) in catalog order

  /// Flattened per-clip results across all runs.
  std::vector<const ClipRunResult*> clips() const;
  std::vector<const ClipRunResult*> clips_for(PlayerKind player) const;
};

/// Runs all 13 clip pairs (26 clips). Deterministic in config.seed.
StudyResults run_full_study(const StudyConfig& config = {});

/// Runs a reduced study (the given data sets only) — used by tests to keep
/// runtimes short while exercising the identical pipeline.
StudyResults run_study_subset(const StudyConfig& config, const std::vector<int>& data_sets);

}  // namespace streamlab
