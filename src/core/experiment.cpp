#include "core/experiment.hpp"

#include <algorithm>

#include "dissect/dissector.hpp"
#include "pcap/sniffer.hpp"
#include "players/server.hpp"
#include "trackers/tracker.hpp"

namespace streamlab {
namespace {

struct SessionHandles {
  std::unique_ptr<StreamServer> server;
  std::unique_ptr<StreamClient> client;
  std::unique_ptr<PlayerTracker> tracker;
};

SessionHandles make_session(Network& net, Host& server_host, const ClipInfo& clip,
                            const ExperimentConfig& config) {
  SessionHandles s;
  const EncodedClip encoded = encode_clip(clip, config.seed);
  const bool is_media = clip.player == PlayerKind::kMediaPlayer;
  const std::uint16_t server_port = is_media ? kMediaServerPort : kRealServerPort;

  if (is_media) {
    s.server = std::make_unique<WmServer>(server_host, encoded, config.wm, server_port);
  } else {
    s.server = std::make_unique<RmServer>(server_host, encoded, config.rm, server_port,
                                          config.seed ^ 0x524D);
  }

  StreamClient::Config cc;
  cc.kind = clip.player;
  cc.wm = config.wm;
  cc.rm = config.rm;
  s.client = std::make_unique<StreamClient>(
      net.client(), s.server->clip(), Endpoint{server_host.address(), server_port}, cc);
  s.tracker = std::make_unique<PlayerTracker>(*s.client);
  return s;
}

ClipRunResult collect(const ClipInfo& clip, const SessionHandles& session,
                      const std::vector<DissectedPacket>& dissected,
                      Ipv4Address server_addr, const ExperimentConfig& config) {
  ClipRunResult r;
  r.clip = clip;
  r.tracker = session.tracker->report();
  const std::uint16_t client_port = clip.player == PlayerKind::kMediaPlayer
                                        ? kMediaClientPort
                                        : kRealClientPort;
  r.flow = FlowTrace::extract(dissected, server_addr, client_port);
  r.buffering =
      analyze_buffering(r.flow.bandwidth_timeline(config.bandwidth_window),
                        config.bandwidth_window);
  r.app_packets = session.client->packets();
  r.server_streaming_duration = session.server->streaming_duration();
  return r;
}

void run_to_completion(Network& net, const ClipInfo& clip, const ExperimentConfig& config) {
  const SimTime deadline =
      net.loop().now() + clip.length + config.extra_sim_time;
  net.loop().run_until(deadline);
}

}  // namespace

ClipRunResult run_single_clip(const ClipInfo& clip, const ExperimentConfig& config) {
  PathConfig path = config.path;
  path.seed = config.seed;
  Network net(path);
  Host& server_host = net.add_server("server");

  auto session = make_session(net, server_host, clip, config);
  Sniffer::Options sniff_opts;
  sniff_opts.snaplen = config.snaplen;
  sniff_opts.capture_outbound = false;  // the study analyses inbound traffic
  Sniffer sniffer(net.client(), sniff_opts);

  session.client->start();
  session.tracker->start();
  run_to_completion(net, clip, config);

  const auto dissected = dissect_trace(sniffer.trace());
  ClipRunResult result =
      collect(clip, session, dissected, server_host.address(), config);
  if (config.keep_capture) result.capture = sniffer.take_trace();
  return result;
}

PairRunResult run_clip_pair(const ClipSet& set, RateTier tier,
                            const ExperimentConfig& config) {
  const auto pair = set.pair(tier);
  if (!pair) {
    // A tier the set lacks: run whatever exists standalone; callers check
    // tiers via the catalog first, so this is a programming error guard.
    PairRunResult empty;
    return empty;
  }
  const auto& [real_clip, media_clip] = *pair;

  PathConfig path = config.path;
  path.seed = config.seed;
  Network net(path);
  Host& real_host = net.add_server("real-server");
  Host& media_host = net.add_server("media-server");

  // Path characterisation before streaming, as the paper does with
  // ping/tracert before each run.
  PairRunResult result;
  result.ping = run_ping(net, real_host.address(), /*count=*/10);
  result.route = run_traceroute(net, real_host.address());

  auto real_session = make_session(net, real_host, real_clip, config);
  auto media_session = make_session(net, media_host, media_clip, config);

  Sniffer::Options sniff_opts;
  sniff_opts.snaplen = config.snaplen;
  sniff_opts.capture_outbound = false;
  Sniffer sniffer(net.client(), sniff_opts);

  // Both players start simultaneously (Section 2.A).
  real_session.client->start();
  media_session.client->start();
  real_session.tracker->start();
  media_session.tracker->start();

  const Duration longest = std::max(real_clip.length, media_clip.length);
  net.loop().run_until(net.loop().now() + longest + config.extra_sim_time);

  const auto dissected = dissect_trace(sniffer.trace());
  result.real = collect(real_clip, real_session, dissected, real_host.address(), config);
  result.media =
      collect(media_clip, media_session, dissected, media_host.address(), config);
  if (config.keep_capture) {
    // The pair shares one capture; attach it to the Real result arbitrarily.
    result.real.capture = sniffer.take_trace();
  }
  return result;
}

}  // namespace streamlab
