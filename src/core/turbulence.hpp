// Turbulence scenario harness: the paper's comparison methodology run under
// *scripted* network turbulence instead of a stationary path. A scenario
// streams a clip (or a WM-vs-RM pair, Section 2.A) while a FaultScheduler
// plays impairment episodes — link flaps, burst-loss epochs, congestion
// (bandwidth) dips, delay spikes — onto the bottleneck link, then reports
// how each player's session machinery (delay buffer, PLAY retries,
// inactivity watchdog) survived: recovery time, rebuffering, frames lost
// during vs. after the episode, and sessions abandoned.
#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "core/experiment.hpp"
#include "obs/obs.hpp"
#include "players/multipath.hpp"
#include "players/repair.hpp"
#include "sim/audit.hpp"
#include "sim/faults.hpp"
#include "sim/repair.hpp"

namespace streamlab {

struct TurbulenceScenarioConfig {
  PathConfig path;
  std::uint64_t seed = 1;
  /// Optional observability context; when set it is attached to the run's
  /// network before any session is constructed, so metric handles and trace
  /// tracks cover the whole timeline. One Obs per run — SimTime restarts at
  /// zero for every scenario.
  obs::Obs* obs = nullptr;
  /// Optional invariant auditor (sim/audit.hpp): attached to the run's loop
  /// and links before any session starts, fed the trial-end conservation
  /// ledgers after the loop drains. One fresh Auditor per scenario run; when
  /// `obs` is also set the audit counters are registered on it.
  audit::Auditor* auditor = nullptr;
  /// Optional determinism probe, folded over every packet reaching a client
  /// NIC. Two runs of the same seed must produce equal digests.
  audit::DeterminismProbe* probe = nullptr;
  /// Per-trial sim-event budget; 0 = unlimited. A trial that exhausts it
  /// stops where it stands (TurbulenceRunResult::budget_exhausted) — the
  /// collected metrics cover the truncated timeline, and link conservation
  /// still balances because the ledger counts queued and in-flight packets.
  std::uint64_t max_sim_events = 0;
  /// Per-trial wall-clock budget; zero = unlimited. Checked between event
  /// chunks, so overrun is bounded by one chunk's execution time.
  std::chrono::milliseconds max_wall_time{0};
  WmBehavior wm;
  RmBehavior rm;
  /// Client-side session recovery knobs. The scenario default (unlike the
  /// plain experiment default) arms the inactivity watchdog, since dead
  /// sessions are precisely what turbulence runs must detect.
  SessionRecoveryConfig recovery{true, Duration::millis(500), 2.0, 5,
                                 Duration::seconds(8)};
  /// Play with the products' stall behaviour (Section 3.F) so the delay
  /// buffer's protection during an episode is visible as stall time.
  bool rebuffering = true;
  /// Tighter than the client default: a frame whose data was lost to an
  /// episode (never retransmitted) should be skipped after a short freeze,
  /// not hold the picture for 10 s.
  Duration max_stall = Duration::seconds(2);
  /// Episode script, applied to the path's bottleneck link in start order.
  /// kRouterDown episodes target `FaultEpisode::router_index` instead.
  std::vector<FaultEpisode> episodes;
  /// Run-off after the nominal clip length.
  Duration extra_sim_time = Duration::seconds(90);

  // --- Self-healing knobs (router-down turbulence) ---
  /// Deterministic route-repair control plane (sim/repair.hpp). When set, a
  /// RouteRepair protects the path's detour span (if `path.detour` is
  /// configured) and/or the explicit span below, withdrawing the primaries
  /// through downed routers after a detection delay and restoring them
  /// after hold-down. nullopt = no control plane (silent black hole).
  std::optional<RouteRepairConfig> repair;
  /// Chain-router span [first, last] to protect when the path has no detour
  /// (the withdraw then produces Destination Unreachable — the failover
  /// fast-fail signal). Negative = protect only the detour span.
  int repair_span_first = -1;
  int repair_span_last = -1;
  /// Stand up a mirror server beside the primary and hand its endpoint to
  /// the client, which fails over to it (resuming at the contiguous media
  /// position) when the primary path dies. Clip runs only; the paired
  /// comparison harness ignores this.
  bool mirror_server = false;
  /// Consecutive Destination Unreachable packets that fast-fail the client
  /// onto the mirror (see FailoverConfig).
  int icmp_unreachable_threshold = 3;

  // --- Loss repair layer (players/repair.hpp) ---
  /// FEC + NACK policy applied to every server (mirror included) and client
  /// of the scenario. The default leaves repair off, preserving the
  /// unrepaired baseline byte for byte.
  RepairLayerConfig repair_layer;

  // --- Multipath striping (players/multipath.hpp) ---
  /// When enabled and the path has a detour, the primary server stripes the
  /// stream across the chain and the detour branch under health-driven
  /// weights; the client reassembles global order through a bounded join
  /// buffer. The mirror (if any) stays single-path — a failover epoch is
  /// already a degraded state. Default off: the single-path baseline is
  /// byte-identical to previous behaviour.
  MultipathConfig multipath;
};

/// How one player session fared through the scripted turbulence.
struct SessionRecoveryMetrics {
  ClipInfo clip;

  // Session outcome.
  bool established = false;       ///< server ever answered
  bool abandoned = false;         ///< PLAY retries exhausted
  bool stream_dead = false;       ///< inactivity watchdog fired mid-stream
  bool completed = false;         ///< playback ran to the final frame
  std::uint32_t play_attempts = 0;

  // Recovery behaviour.
  /// Gap from the end of the first episode to the next data packet
  /// delivered afterwards; unset when no data ever followed the episode.
  std::optional<Duration> time_to_recover;
  std::uint32_t rebuffer_events = 0;
  Duration stall_time;

  // Frame accounting, split around the episode windows.
  std::uint32_t frames_rendered = 0;
  std::uint32_t frames_dropped = 0;
  std::uint32_t frames_dropped_during_episodes = 0;  ///< decode deadline inside a window
  std::uint32_t frames_dropped_after_episodes = 0;   ///< after the last covering window

  // Datagram accounting.
  std::uint64_t packets_received = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t duplicate_packets = 0;

  // Self-healing behaviour.
  std::uint32_t failovers = 0;            ///< mirror failovers committed
  std::uint64_t icmp_unreachables = 0;    ///< Destination Unreachable observed
  std::uint64_t resume_offset = 0;        ///< media position of the last failover PLAY
  /// Stall time overlapping a kRouterDown episode window — the rebuffering
  /// attributable to router failure rather than ambient turbulence.
  Duration stall_during_router_down;

  // Loss repair behaviour (all zero when repair_layer is disabled).
  std::uint64_t packets_recovered = 0;   ///< FEC + retransmission repairs
  std::uint64_t recovered_by_fec = 0;
  std::uint64_t recovered_by_retx = 0;
  std::uint64_t nacks_sent = 0;          ///< client NACK messages
  std::uint64_t parity_packets = 0;      ///< parity packets received
  std::uint64_t repair_wire_bytes = 0;   ///< parity + retransmission wire bytes
  std::uint64_t total_wire_bytes = 0;    ///< all wire bytes (media + repair)
  double repair_latency_mean_ms = 0.0;   ///< gap notice -> repair delivery
  double repair_latency_p95_ms = 0.0;
  std::uint64_t retransmissions_sent = 0;   ///< server-side retx answered
  std::uint64_t retx_suppressed_pacer = 0;  ///< server retx dropped by pacer

  // Multipath striping behaviour (all zero when multipath is disabled).
  std::uint64_t path_switches = 0;     ///< healthy<->draining transitions
  std::uint64_t primary_packets = 0;   ///< subflow-0 datagrams delivered
  std::uint64_t detour_packets = 0;    ///< subflow-1 datagrams delivered
  std::uint64_t primary_lost = 0;      ///< subflow-0 sequence holes
  std::uint64_t detour_lost = 0;       ///< subflow-1 sequence holes
  double primary_goodput_kbps = 0.0;   ///< subflow-0 media rate over the stream
  double detour_goodput_kbps = 0.0;    ///< subflow-1 media rate over the stream
  std::uint32_t reorder_depth_p95 = 0; ///< join-buffer occupancy p95
  std::uint64_t nack_suppressed = 0;   ///< NACKs deferred by reorder tolerance
  std::uint32_t primary_stalls = 0;    ///< stalls attributed to subflow 0
  std::uint32_t detour_stalls = 0;     ///< stalls attributed to subflow 1
  std::uint64_t join_duplicates = 0;   ///< cross-subflow duplicates dropped
  std::uint64_t join_forced = 0;       ///< join-buffer hold-expiry releases
  bool multipath_degraded = false;     ///< every subflow draining at run end

  /// Per-subflow loss ratio: holes / (holes + delivered).
  double subflow_loss_ratio(std::uint64_t lost, std::uint64_t received) const {
    const std::uint64_t denom = lost + received;
    return denom == 0 ? 0.0
                      : static_cast<double>(lost) / static_cast<double>(denom);
  }
  double primary_loss_ratio() const {
    return subflow_loss_ratio(primary_lost, primary_packets);
  }
  double detour_loss_ratio() const {
    return subflow_loss_ratio(detour_lost, detour_packets);
  }
  /// Rebuffering exposure: stall time per nominal clip second.
  double rebuffer_ratio() const {
    const double len = clip.length.to_seconds();
    return len <= 0.0 ? 0.0 : stall_time.to_seconds() / len;
  }

  /// abandoned or declared dead: the session did not survive the turbulence.
  bool session_failed() const { return abandoned || stream_dead; }

  /// Fraction of the packets the network lost that the repair layer
  /// delivered anyway: recovered / (recovered + still-lost).
  double recovery_ratio() const {
    const std::uint64_t denom = packets_recovered + packets_lost;
    return denom == 0 ? 0.0 : static_cast<double>(packets_recovered) /
                                  static_cast<double>(denom);
  }
  /// Repair bandwidth overhead: repair wire bytes per media wire byte.
  double repair_overhead() const {
    const std::uint64_t media = total_wire_bytes - repair_wire_bytes;
    return media == 0 ? 0.0
                      : static_cast<double>(repair_wire_bytes) / static_cast<double>(media);
  }
};

/// One scenario run: per-player metrics plus the episode ledger.
struct TurbulenceRunResult {
  std::optional<SessionRecoveryMetrics> real;
  std::optional<SessionRecoveryMetrics> media;
  std::vector<FaultScheduler::EpisodeRecord> episodes;
  /// Events executed by this run's loop.
  std::uint64_t sim_events = 0;
  /// The run was truncated by max_sim_events / max_wall_time.
  bool budget_exhausted = false;
  /// Route-repair control-plane transitions (zero without `repair`).
  std::uint64_t reroutes = 0;
  std::uint64_t route_restores = 0;

  int sessions_abandoned() const {
    return (real && real->session_failed() ? 1 : 0) +
           (media && media->session_failed() ? 1 : 0);
  }
};

/// Streams one clip over a fresh faulted network.
TurbulenceRunResult run_turbulence_clip(const ClipInfo& clip,
                                        const TurbulenceScenarioConfig& config);

/// The paired form: both formats of one clip set streamed simultaneously
/// through the same scripted turbulence (the paper's side-by-side setup).
TurbulenceRunResult run_turbulence_pair(const ClipSet& set, RateTier tier,
                                        const TurbulenceScenarioConfig& config);

}  // namespace streamlab
