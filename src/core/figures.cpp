#include "core/figures.hpp"

#include <algorithm>

namespace streamlab::figures {

std::vector<double> rtt_samples_ms(const StudyResults& study) {
  std::vector<double> out;
  for (const auto& run : study.runs)
    for (const auto rtt : run.ping.rtts) out.push_back(rtt.to_millis());
  return out;
}

std::vector<double> hop_counts(const StudyResults& study) {
  std::vector<double> out;
  for (const auto& run : study.runs)
    if (run.route.reached) out.push_back(static_cast<double>(run.route.hop_count()));
  return out;
}

std::vector<RatePoint> playback_vs_encoding(const StudyResults& study) {
  std::vector<RatePoint> out;
  for (const auto* clip : study.clips()) {
    RatePoint p;
    p.encoding_kbps = clip->clip.encoded_rate.to_kbps();
    p.playback_kbps = clip->tracker.average_playback_bandwidth.to_kbps();
    p.player = clip->clip.player;
    out.push_back(p);
  }
  return out;
}

PolyFit playback_trend(const StudyResults& study, PlayerKind player) {
  std::vector<double> xs, ys;
  for (const auto& p : playback_vs_encoding(study)) {
    if (p.player != player) continue;
    xs.push_back(p.encoding_kbps);
    ys.push_back(p.playback_kbps);
  }
  return PolyFit::fit(xs, ys, 2);
}

std::vector<std::pair<double, std::uint32_t>> arrival_window(const ClipRunResult& run,
                                                             Duration start,
                                                             Duration span) {
  std::vector<std::pair<double, std::uint32_t>> out;
  const auto seq = run.flow.arrival_sequence();
  if (seq.empty()) return out;
  const double t0 = seq.front().first + start.to_seconds();
  const double t1 = t0 + span.to_seconds();
  std::uint32_t idx = 0;
  for (const auto& [t, _] : seq) {
    if (t < t0 || t >= t1) continue;
    out.emplace_back(t - t0, idx++);
  }
  return out;
}

std::vector<FragmentationPoint> fragmentation_vs_rate(const StudyResults& study) {
  std::vector<FragmentationPoint> out;
  for (const auto* clip : study.clips()) {
    FragmentationPoint p;
    p.encoded_kbps = clip->clip.encoded_rate.to_kbps();
    p.fragment_percent = 100.0 * clip->flow.fragment_fraction();
    p.player = clip->clip.player;
    out.push_back(p);
  }
  return out;
}

Histogram packet_size_pdf(const ClipRunResult& run, double bin_width) {
  Histogram h(bin_width);
  h.add_all(run.flow.packet_sizes());
  return h;
}

std::vector<double> normalized_packet_sizes(const StudyResults& study, PlayerKind player) {
  std::vector<double> out;
  for (const auto* clip : study.clips_for(player)) {
    const auto normalized = normalize_by_mean(clip->flow.packet_sizes());
    out.insert(out.end(), normalized.begin(), normalized.end());
  }
  return out;
}

std::vector<double> clip_interarrivals(const ClipRunResult& run) {
  // The paper's convention: for MediaPlayer flows, only the first packet of
  // each fragment group counts (Figure 9's de-noising); RealPlayer flows
  // never fragment, so the flag is immaterial there.
  const bool groups_only = run.clip.player == PlayerKind::kMediaPlayer;
  return run.flow.interarrivals(groups_only);
}

std::vector<double> normalized_interarrivals(const StudyResults& study, PlayerKind player) {
  std::vector<double> out;
  for (const auto* clip : study.clips_for(player)) {
    const auto normalized = normalize_by_mean(clip_interarrivals(*clip));
    out.insert(out.end(), normalized.begin(), normalized.end());
  }
  return out;
}

std::vector<std::pair<double, double>> bandwidth_timeline(const ClipRunResult& run,
                                                          Duration window) {
  return run.flow.bandwidth_timeline(window);
}

std::vector<BufferRatioPoint> buffering_ratio_vs_rate(const StudyResults& study) {
  std::vector<BufferRatioPoint> out;
  for (const auto* clip : study.clips_for(PlayerKind::kRealPlayer)) {
    BufferRatioPoint p;
    p.encoding_kbps = clip->clip.encoded_rate.to_kbps();
    p.ratio = clip->buffering.ratio();
    out.push_back(p);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.encoding_kbps < b.encoding_kbps; });
  return out;
}

LayerSeries layer_receipt_series(const ClipRunResult& run, Duration start, Duration span) {
  LayerSeries out;
  if (run.app_packets.empty()) return out;
  const double base = run.app_packets.front().network_time.to_seconds();
  const double t0 = base + start.to_seconds();
  const double t1 = t0 + span.to_seconds();
  std::uint32_t net_idx = 0, app_idx = 0;
  for (const auto& ev : run.app_packets) {
    const double nt = ev.network_time.to_seconds();
    const double at = ev.app_time.to_seconds();
    if (nt >= t0 && nt < t1) out.network.emplace_back(nt - t0, net_idx++);
    if (at >= t0 && at < t1) out.application.emplace_back(at - t0, app_idx++);
  }
  return out;
}

std::vector<std::pair<double, double>> framerate_timeline(const ClipRunResult& run) {
  std::vector<std::pair<double, double>> out;
  for (const auto& s : run.tracker.samples)
    out.emplace_back(s.time.to_seconds(), s.frame_rate_fps);
  return out;
}

std::vector<FrameRatePoint> framerate_vs_encoding(const StudyResults& study) {
  std::vector<FrameRatePoint> out;
  for (const auto* clip : study.clips()) {
    FrameRatePoint p;
    p.x = clip->clip.encoded_rate.to_kbps();
    p.fps = clip->tracker.average_frame_rate;
    p.player = clip->clip.player;
    p.tier = clip->clip.tier;
    out.push_back(p);
  }
  return out;
}

std::vector<FrameRatePoint> framerate_vs_bandwidth(const StudyResults& study) {
  std::vector<FrameRatePoint> out;
  for (const auto* clip : study.clips()) {
    FrameRatePoint p;
    p.x = clip->tracker.average_playback_bandwidth.to_kbps();
    p.fps = clip->tracker.average_frame_rate;
    p.player = clip->clip.player;
    p.tier = clip->clip.tier;
    out.push_back(p);
  }
  return out;
}

std::vector<TierSummary> summarize_by_tier(const std::vector<FrameRatePoint>& points,
                                           PlayerKind player) {
  std::vector<TierSummary> out;
  for (const RateTier tier : {RateTier::kLow, RateTier::kHigh, RateTier::kVeryHigh}) {
    std::vector<double> xs, fps;
    for (const auto& p : points) {
      if (p.player != player || p.tier != tier) continue;
      xs.push_back(p.x);
      fps.push_back(p.fps);
    }
    if (xs.empty()) continue;
    const auto sx = SummaryStats::from(xs);
    const auto sf = SummaryStats::from(fps);
    out.push_back(TierSummary{tier, sx.mean, sf.mean, sf.standard_error, xs.size()});
  }
  return out;
}

}  // namespace streamlab::figures
