// Figure builders: each function computes exactly the series one of the
// paper's figures plots, from StudyResults. Bench binaries print these;
// integration tests assert the paper's shape claims on them.
#pragma once

#include <vector>

#include "analysis/histogram.hpp"
#include "analysis/polyfit.hpp"
#include "analysis/stats.hpp"
#include "core/study.hpp"

namespace streamlab::figures {

// ---- Figure 1 / Figure 2: path characterisation -------------------------

/// All ping RTT samples across runs, in milliseconds.
std::vector<double> rtt_samples_ms(const StudyResults& study);
/// Hop count per run (tracert result).
std::vector<double> hop_counts(const StudyResults& study);

// ---- Figure 3: playback rate vs encoding rate ----------------------------

struct RatePoint {
  double encoding_kbps = 0.0;
  double playback_kbps = 0.0;
  PlayerKind player = PlayerKind::kRealPlayer;
};
std::vector<RatePoint> playback_vs_encoding(const StudyResults& study);
/// Second-order polynomial trend for one player, as the figure overlays.
PolyFit playback_trend(const StudyResults& study, PlayerKind player);

// ---- Figure 4: packet arrival sequence ----------------------------------

/// (seconds since flow start, packet index) within [start, start+span) of
/// the flow, re-indexed from zero.
std::vector<std::pair<double, std::uint32_t>> arrival_window(
    const ClipRunResult& run, Duration start, Duration span);

// ---- Figure 5: MediaPlayer IP fragmentation ------------------------------

struct FragmentationPoint {
  double encoded_kbps = 0.0;
  double fragment_percent = 0.0;
  PlayerKind player = PlayerKind::kRealPlayer;
};
std::vector<FragmentationPoint> fragmentation_vs_rate(const StudyResults& study);

// ---- Figures 6-9: packet size / interarrival distributions ---------------

/// Wire packet-size PDF for one clip run (Figure 6 uses set 1 low).
Histogram packet_size_pdf(const ClipRunResult& run, double bin_width = 50.0);
/// All packet sizes of one player, normalised per-clip by the clip's mean
/// (Figure 7).
std::vector<double> normalized_packet_sizes(const StudyResults& study, PlayerKind player);
/// Interarrival PDF input for one clip run, seconds (Figure 8). MediaPlayer
/// flows automatically collapse fragment groups (first packet per group).
std::vector<double> clip_interarrivals(const ClipRunResult& run);
/// All interarrivals of one player, normalised per-clip by the mean
/// (Figure 9).
std::vector<double> normalized_interarrivals(const StudyResults& study, PlayerKind player);

// ---- Figure 10: bandwidth vs time ----------------------------------------

std::vector<std::pair<double, double>> bandwidth_timeline(const ClipRunResult& run,
                                                          Duration window);

// ---- Figure 11: buffering ratio vs encoding rate --------------------------

struct BufferRatioPoint {
  double encoding_kbps = 0.0;
  double ratio = 0.0;
};
/// One point per RealPlayer clip (the paper notes MediaPlayer's ratio is 1).
std::vector<BufferRatioPoint> buffering_ratio_vs_rate(const StudyResults& study);

// ---- Figure 12: network vs application layer receipt ----------------------

struct LayerSeries {
  /// (seconds, cumulative packets) at the network layer.
  std::vector<std::pair<double, std::uint32_t>> network;
  /// (seconds, cumulative packets) at the application layer.
  std::vector<std::pair<double, std::uint32_t>> application;
};
LayerSeries layer_receipt_series(const ClipRunResult& run, Duration start, Duration span);

// ---- Figures 13-15: frame rate -------------------------------------------

/// (seconds, fps) from the tracker samples of one run (Figure 13).
std::vector<std::pair<double, double>> framerate_timeline(const ClipRunResult& run);

struct FrameRatePoint {
  double x = 0.0;  ///< encoding rate (Fig 14) or playout bandwidth (Fig 15), Kbps
  double fps = 0.0;
  PlayerKind player = PlayerKind::kRealPlayer;
  RateTier tier = RateTier::kLow;
};
std::vector<FrameRatePoint> framerate_vs_encoding(const StudyResults& study);
std::vector<FrameRatePoint> framerate_vs_bandwidth(const StudyResults& study);

/// Per-tier aggregation with standard error — the error-bar lines of
/// Figures 14-15.
struct TierSummary {
  RateTier tier = RateTier::kLow;
  double mean_x = 0.0;
  double mean_fps = 0.0;
  double stderr_fps = 0.0;
  std::size_t count = 0;
};
std::vector<TierSummary> summarize_by_tier(const std::vector<FrameRatePoint>& points,
                                           PlayerKind player);

}  // namespace streamlab::figures
