// ASCII rendering for bench output: tables, XY scatter plots, CDF/PDF
// listings. The benches print the same rows/series the paper plots plus a
// terminal-friendly sketch of each figure.
#pragma once

#include <string>
#include <vector>

#include "analysis/histogram.hpp"

namespace streamlab::render {

/// Monospace table with a header row.
std::string table(const std::vector<std::string>& columns,
                  const std::vector<std::vector<std::string>>& rows);

/// A named series of (x, y) points for plotting.
struct Series {
  std::string name;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;
};

/// Character-grid scatter plot with axes and ranges printed below.
std::string xy_plot(const std::vector<Series>& series, int width = 72, int height = 20);

/// Histogram bins as "center  probability  bar" lines.
std::string pdf_listing(const streamlab::Histogram& histogram, const std::string& x_label);

/// CDF as "x  p  bar" lines at fixed quantile steps.
std::string cdf_listing(const std::vector<double>& values, const std::string& x_label,
                        int points = 11);

}  // namespace streamlab::render
