#include "media/clip.hpp"

namespace streamlab {

std::string to_string(PlayerKind k) {
  return k == PlayerKind::kRealPlayer ? "RealPlayer" : "MediaPlayer";
}

std::string to_string(RateTier t) {
  switch (t) {
    case RateTier::kLow: return "low";
    case RateTier::kHigh: return "high";
    case RateTier::kVeryHigh: return "very-high";
  }
  return "?";
}

std::string to_string(ContentClass c) {
  switch (c) {
    case ContentClass::kSports: return "Sports";
    case ContentClass::kCommercial: return "Commercial";
    case ContentClass::kMusicTv: return "Music TV";
    case ContentClass::kNews: return "News";
    case ContentClass::kMovie: return "Movie clip";
  }
  return "?";
}

std::string tier_label(PlayerKind k, RateTier t) {
  std::string out(k == PlayerKind::kRealPlayer ? "R-" : "M-");
  switch (t) {
    case RateTier::kLow: out += 'l'; break;
    case RateTier::kHigh: out += 'h'; break;
    case RateTier::kVeryHigh: out += 'v'; break;
  }
  return out;
}

std::string ClipInfo::id() const {
  return "set" + std::to_string(data_set) + "/" + tier_label(player, tier);
}

}  // namespace streamlab
