#include "media/encoder.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace streamlab {

double nominal_frame_rate(PlayerKind player, BitRate rate) {
  const double r = rate.to_kbps();
  double fps = 0.0;
  if (player == PlayerKind::kMediaPlayer) {
    // 13 fps at 39 Kbps rising to ~25 fps by 250 Kbps (Figures 13-14).
    fps = 13.0 + 12.0 * std::log10(std::max(r, 1.0) / 39.0);
  } else {
    // RealPlayer holds a higher floor at low rates (Figure 13).
    fps = 19.0 + 6.0 * std::log10(std::max(r, 1.0) / 22.0);
  }
  return std::clamp(fps, 5.0, 30.0);
}

EncodedClip::EncodedClip(ClipInfo info, double fps, std::vector<EncodedFrame> frames)
    : info_(info), fps_(fps), frames_(std::move(frames)) {
  std::uint64_t offset = 0;
  for (auto& f : frames_) {
    f.byte_offset = offset;
    offset += f.bytes;
  }
  total_bytes_ = offset;
}

std::size_t EncodedClip::frames_complete_at(std::uint64_t byte_limit) const {
  // Frames are contiguous and ordered; binary search the first frame whose
  // end exceeds the limit.
  std::size_t lo = 0, hi = frames_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    const auto& f = frames_[mid];
    if (f.byte_offset + f.bytes <= byte_limit)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

EncodedClip encode_clip(const ClipInfo& info, std::uint64_t seed) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(info.data_set) << 32) ^
          static_cast<std::uint64_t>(info.encoded_rate.bits_per_second()));

  const double fps = nominal_frame_rate(info.player, info.encoded_rate);
  const auto frame_count =
      static_cast<std::size_t>(info.length.to_seconds() * fps);
  assert(frame_count > 0);

  const double total_budget = static_cast<double>(info.media_bytes());
  const double mean_frame = total_budget / static_cast<double>(frame_count);

  // Keyframe every ~4 s; keyframes carry ~3x the P-frame payload.
  const auto gop = std::max<std::size_t>(2, static_cast<std::size_t>(fps * 4.0));
  const double g = static_cast<double>(gop);
  const double p_frame_mean = mean_frame * g / (g + 2.0);
  const double i_frame_mean = 3.0 * p_frame_mean;
  // MediaPlayer's rate control is tight (near-CBR); RealPlayer's is loose.
  const double cv = info.player == PlayerKind::kMediaPlayer ? 0.08 : 0.30;

  std::vector<EncodedFrame> frames;
  frames.reserve(frame_count);
  double produced = 0.0;
  for (std::size_t i = 0; i < frame_count; ++i) {
    EncodedFrame f;
    f.index = static_cast<std::uint32_t>(i);
    f.pts = Duration::from_seconds(static_cast<double>(i) / fps);
    f.keyframe = (i % gop) == 0;
    const double mean = f.keyframe ? i_frame_mean : p_frame_mean;
    const double size = std::max(40.0, rng.lognormal_mean_cv(mean, cv));
    f.bytes = static_cast<std::uint32_t>(size + 0.5);
    produced += f.bytes;
    frames.push_back(f);
  }

  // Normalize so the byte total matches the encoded rate exactly — the
  // trackers re-measure the encoded rate from this total (Table 1 column).
  const double scale = total_budget / produced;
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i + 1 == frames.size()) {
      const auto target = static_cast<std::uint64_t>(total_budget);
      frames[i].bytes = static_cast<std::uint32_t>(
          target > running ? target - running : 40);
    } else {
      frames[i].bytes = static_cast<std::uint32_t>(
          std::max(40.0, static_cast<double>(frames[i].bytes) * scale));
    }
    running += frames[i].bytes;
  }

  return EncodedClip(info, fps, std::move(frames));
}

}  // namespace streamlab
