#include "media/catalog.hpp"

namespace streamlab {
namespace {

ClipInfo clip(int set, ContentClass content, Duration length, PlayerKind player,
              RateTier tier, double encoded_kbps) {
  ClipInfo c;
  c.data_set = set;
  c.content = content;
  c.player = player;
  c.tier = tier;
  c.encoded_rate = BitRate::kbps(encoded_kbps);
  switch (tier) {
    case RateTier::kLow: c.advertised_rate = BitRate::kbps(56); break;
    case RateTier::kHigh: c.advertised_rate = BitRate::kbps(300); break;
    case RateTier::kVeryHigh: c.advertised_rate = BitRate::kbps(700); break;
  }
  c.length = length;
  return c;
}

ClipSet make_set(int id, ContentClass content, Duration length,
                 std::vector<std::pair<RateTier, std::pair<double, double>>> tiers) {
  ClipSet set;
  set.id = id;
  set.content = content;
  set.length = length;
  for (const auto& [tier, rates] : tiers) {
    set.clips.push_back(clip(id, content, length, PlayerKind::kRealPlayer, tier, rates.first));
    set.clips.push_back(clip(id, content, length, PlayerKind::kMediaPlayer, tier, rates.second));
  }
  return set;
}

std::vector<ClipSet> build_catalog() {
  std::vector<ClipSet> catalog;
  // Table 1, encoded rates in Kbps as {Real, Media}. Durations mm:ss.
  catalog.push_back(make_set(1, ContentClass::kSports, Duration::seconds(230),
                             {{RateTier::kHigh, {284.0, 323.1}},
                              {RateTier::kLow, {36.0, 49.8}}}));
  catalog.push_back(make_set(2, ContentClass::kCommercial, Duration::seconds(39),
                             {{RateTier::kHigh, {268.0, 307.2}},
                              {RateTier::kLow, {84.0, 102.3}}}));
  catalog.push_back(make_set(3, ContentClass::kSports, Duration::seconds(60),
                             {{RateTier::kHigh, {284.0, 307.2}},
                              {RateTier::kLow, {36.5, 37.9}}}));
  catalog.push_back(make_set(4, ContentClass::kMusicTv, Duration::seconds(245),
                             {{RateTier::kHigh, {180.9, 309.1}},
                              {RateTier::kLow, {26.0, 49.6}}}));
  catalog.push_back(make_set(5, ContentClass::kNews, Duration::seconds(107),
                             {{RateTier::kHigh, {217.6, 250.4}},
                              {RateTier::kLow, {22.0, 39.0}}}));
  catalog.push_back(make_set(6, ContentClass::kMovie, Duration::seconds(147),
                             {{RateTier::kVeryHigh, {636.9, 731.3}},
                              {RateTier::kHigh, {271.0, 347.2}},
                              {RateTier::kLow, {38.5, 102.3}}}));
  return catalog;
}

}  // namespace

std::optional<std::pair<ClipInfo, ClipInfo>> ClipSet::pair(RateTier tier) const {
  std::optional<ClipInfo> real, media;
  for (const auto& c : clips) {
    if (c.tier != tier) continue;
    (c.player == PlayerKind::kRealPlayer ? real : media) = c;
  }
  if (!real || !media) return std::nullopt;
  return std::make_pair(*real, *media);
}

const std::vector<ClipSet>& table1_catalog() {
  static const std::vector<ClipSet> catalog = build_catalog();
  return catalog;
}

std::vector<ClipInfo> all_clips() {
  std::vector<ClipInfo> out;
  for (const auto& set : table1_catalog())
    out.insert(out.end(), set.clips.begin(), set.clips.end());
  return out;
}

std::vector<ClipInfo> clips_for(PlayerKind player) {
  std::vector<ClipInfo> out;
  for (const auto& c : all_clips())
    if (c.player == player) out.push_back(c);
  return out;
}

std::optional<ClipInfo> find_clip(const std::string& id) {
  for (const auto& c : all_clips())
    if (c.id() == id) return c;
  return std::nullopt;
}

}  // namespace streamlab
