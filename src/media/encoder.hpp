// Frame-level encoder model.
//
// The paper streams pre-encoded commercial clips; we synthesise an encoded
// frame table per clip so the player models move real frame boundaries
// through the network and the client measures frame rate from actual decode
// events (Figures 13-15), rather than reporting a constant.
//
// Calibration: the nominal frame-rate curves reproduce the paper's
// application-layer findings — both players reach ~25 fps at high rates;
// MediaPlayer encodes low-rate clips at markedly lower frame rates (13 fps
// at ~39 Kbps, Figure 13) while RealPlayer sustains ~19-20 fps there.
#pragma once

#include <cstdint>
#include <vector>

#include "media/clip.hpp"
#include "util/rng.hpp"

namespace streamlab {

struct EncodedFrame {
  std::uint32_t index = 0;
  Duration pts;                 ///< presentation time relative to clip start
  std::uint32_t bytes = 0;
  bool keyframe = false;
  std::uint64_t byte_offset = 0;  ///< position of the frame in the media byte stream
};

/// The encoder's nominal frame rate for a player at an encoding rate.
double nominal_frame_rate(PlayerKind player, BitRate rate);

/// An encoded clip: an ordered frame table whose sizes sum to exactly the
/// clip's media_bytes().
class EncodedClip {
 public:
  EncodedClip(ClipInfo info, double fps, std::vector<EncodedFrame> frames);

  const ClipInfo& info() const { return info_; }
  double frame_rate() const { return fps_; }
  const std::vector<EncodedFrame>& frames() const { return frames_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Index of the first frame not fully contained in [0, byte_limit), i.e.
  /// how many complete frames the first `byte_limit` media bytes carry.
  std::size_t frames_complete_at(std::uint64_t byte_limit) const;

 private:
  ClipInfo info_;
  double fps_;
  std::vector<EncodedFrame> frames_;
  std::uint64_t total_bytes_ = 0;
};

/// Deterministically encodes a clip. MediaPlayer output is near-CBR frame
/// sizes (low variance); RealPlayer output is VBR (higher variance). A
/// keyframe opens every ~4 seconds of media.
EncodedClip encode_clip(const ClipInfo& info, std::uint64_t seed);

}  // namespace streamlab
