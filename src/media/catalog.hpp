// The Table 1 experiment catalog: six clip sets, 26 clips, each encoded in
// both RealPlayer and MediaPlayer formats at matching advertised tiers.
#pragma once

#include <optional>
#include <vector>

#include "media/clip.hpp"

namespace streamlab {

struct ClipSet {
  int id = 0;
  ContentClass content = ContentClass::kSports;
  Duration length;
  std::vector<ClipInfo> clips;  ///< R/M pairs per tier

  /// The R/M pair at a tier, if the set has one (only set 6 has very-high).
  std::optional<std::pair<ClipInfo, ClipInfo>> pair(RateTier tier) const;
};

/// The full catalog, exactly as Table 1 lists it. Set 1's duration is not
/// legible in the published table; we use 3:50, inferred from the streaming
/// durations visible in Figure 10 (documented in EXPERIMENTS.md).
const std::vector<ClipSet>& table1_catalog();

/// Flattened view of all 26 clips.
std::vector<ClipInfo> all_clips();

/// All clips of one player.
std::vector<ClipInfo> clips_for(PlayerKind player);

/// Looks up a clip by its id() string; nullopt when unknown.
std::optional<ClipInfo> find_clip(const std::string& id);

}  // namespace streamlab
