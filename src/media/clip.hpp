// Clip metadata: the workload unit of the study (Table 1).
#pragma once

#include <string>

#include "util/rate.hpp"
#include "util/time.hpp"

namespace streamlab {

/// The two commercial players the paper compares.
enum class PlayerKind { kRealPlayer, kMediaPlayer };

/// Advertised connection-speed tier of a clip ("56 Kbps modem", "300 Kbps
/// broadband", "700 Kbps"): Table 1 rows R-l/M-l, R-h/M-h, R-v/M-v.
enum class RateTier { kLow, kHigh, kVeryHigh };

enum class ContentClass { kSports, kCommercial, kMusicTv, kNews, kMovie };

std::string to_string(PlayerKind k);
std::string to_string(RateTier t);
std::string to_string(ContentClass c);
/// Short label like "R-h" / "M-v", as Table 1 writes it.
std::string tier_label(PlayerKind k, RateTier t);

struct ClipInfo {
  int data_set = 0;  ///< 1..6
  ContentClass content = ContentClass::kSports;
  PlayerKind player = PlayerKind::kRealPlayer;
  RateTier tier = RateTier::kLow;
  BitRate encoded_rate;    ///< actual encoding rate as Table 1 reports it
  BitRate advertised_rate; ///< what the Web page link claims
  Duration length;

  /// Stable identifier, e.g. "set1/M-h".
  std::string id() const;
  /// Total media payload bytes in the encoded clip.
  std::int64_t media_bytes() const { return encoded_rate.bytes_in(length); }
};

}  // namespace streamlab
