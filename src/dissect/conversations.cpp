#include "dissect/conversations.hpp"

#include <algorithm>

#include "net/address.hpp"

namespace streamlab {
namespace {

const char* proto_name(std::uint8_t proto) {
  switch (proto) {
    case 1: return "icmp";
    case 6: return "tcp";
    case 17: return "udp";
    default: return "ip";
  }
}

}  // namespace

std::string ConversationStats::label() const {
  return Ipv4Address(key.addr_a).to_string() + ":" + std::to_string(key.port_a) +
         " <-> " + Ipv4Address(key.addr_b).to_string() + ":" +
         std::to_string(key.port_b) + " (" + proto_name(key.protocol) + ")";
}

void ConversationTable::add(const DissectedPacket& packet) {
  const auto src = packet.field("ip.src");
  const auto dst = packet.field("ip.dst");
  const auto proto = packet.field("ip.proto");
  if (!src || !dst || !proto) {
    ++unattributed_;
    return;
  }
  const auto src_addr = static_cast<std::uint32_t>(src->number);
  const auto dst_addr = static_cast<std::uint32_t>(dst->number);
  const auto protocol = static_cast<std::uint8_t>(proto->number);

  // Ports, when a transport header is present.
  std::uint16_t src_port = 0, dst_port = 0;
  bool have_ports = false;
  const char* prefix = protocol == 6 ? "tcp" : "udp";
  if (auto sp = packet.field(std::string(prefix) + ".srcport")) {
    src_port = static_cast<std::uint16_t>(sp->number);
    dst_port = static_cast<std::uint16_t>(packet.field(std::string(prefix) + ".dstport")
                                              ->number);
    have_ports = true;
  }

  const auto frag = packet.field("ip.frag_offset");
  const bool trailing = frag && frag->number > 0;

  ConversationKey key;
  if (!trailing && have_ports) {
    // Canonical orientation: smaller (addr, port) endpoint is side A.
    if (std::tie(src_addr, src_port) <= std::tie(dst_addr, dst_port)) {
      key = {src_addr, dst_addr, src_port, dst_port, protocol};
    } else {
      key = {dst_addr, src_addr, dst_port, src_port, protocol};
    }
    last_flow_[{std::min(src_addr, dst_addr), std::max(src_addr, dst_addr), protocol}] =
        key;
  } else {
    // Fragment (or port-less protocol): attribute to the last conversation
    // between the address pair.
    auto it = last_flow_.find(
        {std::min(src_addr, dst_addr), std::max(src_addr, dst_addr), protocol});
    if (it == last_flow_.end()) {
      if (protocol == 1) {
        key = {std::min(src_addr, dst_addr), std::max(src_addr, dst_addr), 0, 0,
               protocol};
      } else {
        ++unattributed_;
        return;
      }
    } else {
      key = it->second;
    }
  }

  auto [entry, inserted] = table_.try_emplace(key);
  ConversationStats& stats = entry->second;
  if (inserted) {
    stats.key = key;
    stats.first_seen = packet.timestamp;
  }
  stats.last_seen = std::max(stats.last_seen, packet.timestamp);
  const auto bytes = static_cast<std::uint64_t>(packet.frame_length);
  if (src_addr == key.addr_a && (!have_ports || src_port == key.port_a)) {
    ++stats.packets_a_to_b;
    stats.bytes_a_to_b += bytes;
  } else {
    ++stats.packets_b_to_a;
    stats.bytes_b_to_a += bytes;
  }
  if (trailing) ++stats.fragments;
}

void ConversationTable::add_all(const std::vector<DissectedPacket>& packets) {
  for (const auto& p : packets) add(p);
}

std::vector<ConversationStats> ConversationTable::by_bytes() const {
  std::vector<ConversationStats> out;
  out.reserve(table_.size());
  for (const auto& [key, stats] : table_) out.push_back(stats);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total_bytes() > b.total_bytes();
  });
  return out;
}

}  // namespace streamlab
