// Protocol dissection: turns a captured frame into a flat tree of named
// fields ("ip.frag_offset", "udp.dstport", ...) in the style of Ethereal /
// Wireshark, which is what the display-filter language evaluates against.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pcap/capture.hpp"

namespace streamlab {

/// A dissected field value. Every value is stored numerically (addresses as
/// their 32-bit integer, booleans as 0/1) together with a display string, so
/// filter comparisons are uniform.
struct FieldValue {
  std::int64_t number = 0;
  std::string display;

  static FieldValue of(std::int64_t n) { return {n, std::to_string(n)}; }
  static FieldValue of(std::int64_t n, std::string text) { return {n, std::move(text)}; }
};

/// The result of dissecting one frame.
class DissectedPacket {
 public:
  SimTime timestamp;
  std::size_t frame_length = 0;

  void set(std::string name, FieldValue value) { fields_[std::move(name)] = std::move(value); }
  void add_layer(std::string proto) { layers_.push_back(std::move(proto)); }

  /// Field lookup; nullopt when the field is absent from this packet.
  std::optional<FieldValue> field(const std::string& name) const;
  /// True when the protocol layer (e.g. "udp") is present.
  bool has_layer(const std::string& proto) const;

  const std::map<std::string, FieldValue>& fields() const { return fields_; }
  const std::vector<std::string>& layers() const { return layers_; }

  /// One-line summary ("12.345s IP 10.0.0.2 > 192.168.100.10 UDP 5005->4321 len=980").
  std::string summary() const;

 private:
  std::map<std::string, FieldValue> fields_;
  std::vector<std::string> layers_;
};

/// Dissects a single captured frame. Malformed frames yield a packet with
/// whatever layers parsed plus a "_malformed" marker layer, rather than an
/// error — a sniffer must not lose records to bad checksums.
DissectedPacket dissect(const CaptureRecord& record);

/// Dissects a whole trace.
std::vector<DissectedPacket> dissect_trace(const CaptureTrace& trace);

}  // namespace streamlab
