#include "dissect/dissector.hpp"

#include <algorithm>

#include "net/headers.hpp"
#include "util/strings.hpp"

namespace streamlab {

std::optional<FieldValue> DissectedPacket::field(const std::string& name) const {
  auto it = fields_.find(name);
  if (it == fields_.end()) return std::nullopt;
  return it->second;
}

bool DissectedPacket::has_layer(const std::string& proto) const {
  return std::find(layers_.begin(), layers_.end(), proto) != layers_.end();
}

std::string DissectedPacket::summary() const {
  std::string out = fmt_double(timestamp.to_seconds(), 6) + "s";
  auto src = field("ip.src");
  auto dst = field("ip.dst");
  if (src && dst) out += " IP " + src->display + " > " + dst->display;
  if (has_layer("udp")) {
    out += " UDP " + field("udp.srcport")->display + "->" + field("udp.dstport")->display;
  } else if (has_layer("tcp")) {
    out += " TCP " + field("tcp.srcport")->display + "->" + field("tcp.dstport")->display;
  } else if (has_layer("icmp")) {
    out += " ICMP type=" + field("icmp.type")->display;
  }
  if (auto off = field("ip.frag_offset"); off && off->number > 0)
    out += " frag@" + off->display;
  out += " len=" + std::to_string(frame_length);
  return out;
}

DissectedPacket dissect(const CaptureRecord& record) {
  DissectedPacket pkt;
  pkt.timestamp = record.timestamp;
  pkt.frame_length = record.original_length;
  pkt.set("frame.len", FieldValue::of(static_cast<std::int64_t>(record.original_length)));
  pkt.set("frame.cap_len", FieldValue::of(static_cast<std::int64_t>(record.data.size())));
  pkt.set("frame.time_ns", FieldValue::of(record.timestamp.ns()));

  ByteReader r(record.data);
  auto eth = EthernetHeader::decode(r);
  if (!eth) {
    pkt.add_layer("_malformed");
    return pkt;
  }
  pkt.add_layer("eth");
  pkt.set("eth.src", FieldValue::of(0, eth->src.to_string()));
  pkt.set("eth.dst", FieldValue::of(0, eth->dst.to_string()));
  pkt.set("eth.type", FieldValue::of(eth->ethertype));
  if (eth->ethertype != kEtherTypeIpv4) return pkt;

  auto ip = Ipv4Header::decode(r);
  if (!ip) {
    pkt.add_layer("_malformed");
    return pkt;
  }
  pkt.add_layer("ip");
  pkt.set("ip.len", FieldValue::of(ip->total_length));
  pkt.set("ip.id", FieldValue::of(ip->identification));
  pkt.set("ip.flags.df", FieldValue::of(ip->dont_fragment ? 1 : 0));
  pkt.set("ip.flags.mf", FieldValue::of(ip->more_fragments ? 1 : 0));
  pkt.set("ip.frag_offset", FieldValue::of(static_cast<std::int64_t>(ip->fragment_offset_bytes())));
  pkt.set("ip.fragment", FieldValue::of(ip->is_fragment() ? 1 : 0));
  pkt.set("ip.ttl", FieldValue::of(ip->ttl));
  pkt.set("ip.proto", FieldValue::of(ip->protocol));
  pkt.set("ip.src", FieldValue::of(ip->src.value(), ip->src.to_string()));
  pkt.set("ip.dst", FieldValue::of(ip->dst.value(), ip->dst.to_string()));

  if (ip->is_trailing_fragment()) {
    // Trailing fragments carry no transport header; data bytes only.
    pkt.set("ip.payload_len", FieldValue::of(static_cast<std::int64_t>(ip->payload_length())));
    return pkt;
  }

  const std::size_t ip_payload = std::min<std::size_t>(ip->payload_length(), r.remaining());
  ByteReader tr(r.bytes(ip_payload));

  switch (ip->protocol) {
    case kIpProtoUdp: {
      auto udp = UdpHeader::decode(tr);
      if (!udp) {
        pkt.add_layer("_malformed");
        return pkt;
      }
      pkt.add_layer("udp");
      pkt.set("udp.srcport", FieldValue::of(udp->src_port));
      pkt.set("udp.dstport", FieldValue::of(udp->dst_port));
      pkt.set("udp.length", FieldValue::of(udp->length));
      pkt.set("udp.checksum", FieldValue::of(udp->checksum));
      break;
    }
    case kIpProtoTcp: {
      auto tcp = TcpHeader::decode(tr);
      if (!tcp) {
        pkt.add_layer("_malformed");
        return pkt;
      }
      pkt.add_layer("tcp");
      pkt.set("tcp.srcport", FieldValue::of(tcp->src_port));
      pkt.set("tcp.dstport", FieldValue::of(tcp->dst_port));
      pkt.set("tcp.seq", FieldValue::of(tcp->seq));
      pkt.set("tcp.ack", FieldValue::of(tcp->ack));
      pkt.set("tcp.flags.syn", FieldValue::of(tcp->flag_syn ? 1 : 0));
      pkt.set("tcp.flags.ack", FieldValue::of(tcp->flag_ack ? 1 : 0));
      pkt.set("tcp.flags.fin", FieldValue::of(tcp->flag_fin ? 1 : 0));
      pkt.set("tcp.flags.rst", FieldValue::of(tcp->flag_rst ? 1 : 0));
      pkt.set("tcp.window", FieldValue::of(tcp->window));
      break;
    }
    case kIpProtoIcmp: {
      auto icmp = IcmpHeader::decode(tr);
      if (!icmp) {
        pkt.add_layer("_malformed");
        return pkt;
      }
      pkt.add_layer("icmp");
      pkt.set("icmp.type", FieldValue::of(static_cast<std::int64_t>(icmp->type)));
      pkt.set("icmp.code", FieldValue::of(icmp->code));
      pkt.set("icmp.ident", FieldValue::of(icmp->identifier));
      pkt.set("icmp.seq", FieldValue::of(icmp->sequence));
      break;
    }
    default:
      break;
  }
  return pkt;
}

std::vector<DissectedPacket> dissect_trace(const CaptureTrace& trace) {
  std::vector<DissectedPacket> out;
  out.reserve(trace.size());
  for (const auto& rec : trace.records()) out.push_back(dissect(rec));
  return out;
}

}  // namespace streamlab
