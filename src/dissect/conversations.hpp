// Conversation (flow) accounting — Ethereal's "Conversations" view: groups a
// dissected capture into transport-level flows and accumulates per-flow
// statistics. This is the tool the study uses to verify that both players'
// traffic really came from co-located servers and to separate concurrent
// sessions in one capture.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "dissect/dissector.hpp"

namespace streamlab {

/// A transport-level conversation key (unidirectional flows are merged:
/// the smaller endpoint sorts first).
struct ConversationKey {
  std::uint32_t addr_a = 0;
  std::uint32_t addr_b = 0;
  std::uint16_t port_a = 0;
  std::uint16_t port_b = 0;
  std::uint8_t protocol = 0;

  auto operator<=>(const ConversationKey&) const = default;
};

struct ConversationStats {
  ConversationKey key;
  std::uint64_t packets_a_to_b = 0;
  std::uint64_t packets_b_to_a = 0;
  std::uint64_t bytes_a_to_b = 0;
  std::uint64_t bytes_b_to_a = 0;
  std::uint64_t fragments = 0;  ///< trailing IP fragments attributed here
  SimTime first_seen;
  SimTime last_seen;

  std::uint64_t total_packets() const { return packets_a_to_b + packets_b_to_a; }
  std::uint64_t total_bytes() const { return bytes_a_to_b + bytes_b_to_a; }
  Duration duration() const { return last_seen - first_seen; }
  double mean_rate_kbps() const {
    const double secs = duration().to_seconds();
    return secs <= 0.0 ? 0.0 : static_cast<double>(total_bytes()) * 8.0 / secs / 1000.0;
  }
  /// "10.0.0.2:7000 <-> 192.168.100.10:1755 (udp)"
  std::string label() const;
};

/// Builds the conversation table from a dissected capture. Trailing IP
/// fragments carry no ports; they are attributed to the most recent
/// conversation with the same address pair and protocol (the datagram they
/// continue), matching how Ethereal reassembles conversations.
class ConversationTable {
 public:
  void add(const DissectedPacket& packet);
  void add_all(const std::vector<DissectedPacket>& packets);

  /// Conversations sorted by total bytes, descending.
  std::vector<ConversationStats> by_bytes() const;
  std::size_t size() const { return table_.size(); }
  std::uint64_t unattributed_packets() const { return unattributed_; }

 private:
  std::map<ConversationKey, ConversationStats> table_;
  // addr-pair+proto -> last conversation key, for fragment attribution.
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint8_t>, ConversationKey>
      last_flow_;
  std::uint64_t unattributed_ = 0;
};

}  // namespace streamlab
