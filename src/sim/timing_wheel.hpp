// Hierarchical timing wheel with a deterministic drain order.
//
// The classic timer-wheel trade-off is O(1) insert/cancel at the cost of
// losing total order inside a bucket. streamlab cannot give up the
// deterministic (time, insertion-seq) order — campaign digests are
// byte-compared across runs and worker counts — so this wheel restores it by
// never handing events out of a bucket directly: the earliest occupied
// level-0 bucket is drained into a small (when, seq)-ordered ready heap, and
// events are popped from there. Since a level-0 bucket only holds the events
// of one ~1µs tick, the ready heap stays tiny (a handful of entries) and the
// per-event cost is O(log bucket_population) instead of O(log total_pending).
//
// Layout: kLevels wheels of kBuckets buckets each. Level l buckets are
// 2^(kTickBits + l·kBucketBits) ns wide; with 10 tick bits, 6 bucket bits and
// 9 levels the top level spans past the int64 nanosecond range, so there is
// no separate overflow structure — the coarse upper levels *are* the
// calendar spill for far-future events (including SimTime::max()), which
// cascade down level by level as the cursor approaches. Bucket indices are
// absolute ((when >> shift) & mask), occupancy is one bitmap word per level,
// and empty regions are skipped by jumping the cursor straight to the
// earliest occupied bucket across all levels.
//
// Determinism argument (see DESIGN.md §15):
//  * `cursor_` is the exclusive end of the drained window; an insert with
//    when < cursor_ goes straight into the ready heap, where (when, seq)
//    ordering puts it exactly where the global heap would have.
//  * Same-instant events carry strictly monotone seq numbers, so the ready
//    heap fires them in scheduling order — including events scheduled *into*
//    a bucket that is already drained (they join the ready heap instead).
//  * Cascades only move events between buckets keyed by absolute time, so
//    the drain order is independent of when cascades happen.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

namespace streamlab::detail {

/// Event must expose `.when` (SimTime-like, with .ns()) and `.seq` (uint64);
/// both must be stable for the lifetime of the entry.
template <typename Event>
class TimingWheel {
 public:
  static constexpr int kTickBits = 10;              // level-0 tick: 1024 ns
  static constexpr int kBucketBits = 6;             // 64 buckets per level
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
  static constexpr std::uint64_t kMask = kBuckets - 1;
  // 10 + 9·6 = 64 bits: the top level's span covers the whole non-negative
  // int64 range, so any `when` (including SimTime::max()) has a bucket.
  static constexpr int kLevels = 9;

  bool empty() const { return size_ == 0 && ready_.empty(); }
  std::size_t size() const { return size_ + ready_.size(); }

  void push(Event ev) {
    const std::int64_t when = ev.when.ns();
    if (when < cursor_) {
      // Inside the already-drained window: join the ready heap, where the
      // (when, seq) order restores the event's global position.
      ready_push(std::move(ev));
      return;
    }
    const int level = level_for(when);
    const std::size_t idx = (static_cast<std::uint64_t>(when) >> shift(level)) & kMask;
    buckets_[level][idx].push_back(std::move(ev));
    occupied_[level] |= std::uint64_t{1} << idx;
    ++size_;
  }

  /// Earliest event by (when, seq), or nullptr when empty. Advances the
  /// cursor (draining buckets into the ready heap) as needed.
  Event* peek() {
    while (ready_.empty()) {
      if (size_ == 0) return nullptr;
      advance();
    }
    return &ready_.front();
  }

  /// Removes and returns the event peek() points at. Requires peek() != null.
  Event pop() {
    pop_to_back();
    Event ev = std::move(ready_.back());
    ready_.pop_back();
    return ev;
  }

  /// Visits every stored event (buckets and ready heap) in no particular
  /// order; used by the loop destructor to detach handle control blocks.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& level : buckets_)
      for (auto& bucket : level)
        for (Event& ev : bucket) fn(ev);
    for (Event& ev : ready_) fn(ev);
  }

 private:
  static constexpr int shift(int level) { return kTickBits + level * kBucketBits; }
  static constexpr std::int64_t kNone = std::int64_t{-1};

  // Smallest level where the bucket-index distance from the cursor fits one
  // rotation. Choosing by index distance (not raw delta) keeps an insert off
  // the bucket the cursor currently occupies at levels >= 1 — that bucket was
  // already cascaded, so landing in it would wait a full rotation too long.
  int level_for(std::int64_t when) const {
    const std::uint64_t d =
        (static_cast<std::uint64_t>(when) - static_cast<std::uint64_t>(cursor_)) >> kTickBits;
    if (d == 0) return 0;
    int level = (std::bit_width(d) - 1) / kBucketBits;
    if (level >= kLevels) return kLevels - 1;
    if (level + 1 < kLevels &&
        ((static_cast<std::uint64_t>(when) >> shift(level)) -
         (static_cast<std::uint64_t>(cursor_) >> shift(level))) >= kBuckets)
      ++level;
    return level;
  }

  // Start time of the earliest occupied bucket at `level`, treating bits
  // behind the cursor's index as the next rotation. kNone when level empty.
  std::int64_t next_bucket_start(int level) const {
    const std::uint64_t occ = occupied_[level];
    if (occ == 0) return kNone;
    const std::uint64_t unit = static_cast<std::uint64_t>(cursor_) >> shift(level);
    const unsigned c = static_cast<unsigned>(unit & kMask);
    const std::uint64_t ahead = occ >> c;
    const std::uint64_t bucket_no =
        ahead != 0 ? unit + static_cast<unsigned>(std::countr_zero(ahead))
                   : unit - c + kBuckets + static_cast<unsigned>(std::countr_zero(occ));
    return static_cast<std::int64_t>(bucket_no << shift(level));
  }

  // Moves the cursor to the earliest occupied bucket across all levels, then
  // either drains it (level 0) into the ready heap or cascades it downward.
  // Every call retires or demotes at least one bucket, so peek() terminates.
  void advance() {
    std::int64_t best = kNone;
    for (int l = 0; l < kLevels; ++l) {
      const std::int64_t t = next_bucket_start(l);
      if (t != kNone && (best == kNone || t < best)) best = t;
    }
    cursor_ = best;  // safe: no stored event precedes the earliest bucket
    // Cascade top-down every level whose earliest bucket starts exactly here;
    // higher levels redistribute into lower ones strictly ahead of the
    // cursor's own bucket, so order of arrival below is immaterial.
    for (int l = kLevels - 1; l >= 1; --l) {
      if (occupied_[l] != 0 && next_bucket_start(l) == best) cascade(l, best);
    }
    const std::uint64_t tick = static_cast<std::uint64_t>(cursor_) >> kTickBits;
    const std::size_t idx = tick & kMask;
    if (occupied_[0] & (std::uint64_t{1} << idx)) drain(idx, tick);
  }

  void cascade(int level, std::int64_t start) {
    const std::size_t idx = (static_cast<std::uint64_t>(start) >> shift(level)) & kMask;
    auto& bucket = buckets_[level][idx];
    occupied_[level] &= ~(std::uint64_t{1} << idx);
    size_ -= bucket.size();
    // Swap out: push() below must not touch the vector being iterated (an
    // event can re-land in a lower level's bucket, never this one).
    std::vector<Event> moving;
    moving.swap(bucket);
    for (Event& ev : moving) push(std::move(ev));
    // Hand the capacity back so steady-state cascading stays allocation-free.
    moving.clear();
    bucket.swap(moving);
  }

  void drain(std::size_t idx, std::uint64_t tick) {
    auto& bucket = buckets_[0][idx];
    occupied_[0] &= ~(std::uint64_t{1} << idx);
    size_ -= bucket.size();
    for (Event& ev : bucket) ready_push(std::move(ev));
    bucket.clear();
    cursor_ = static_cast<std::int64_t>((tick + 1) << kTickBits);
  }

  // Min-heap on (when, seq) over `ready_`, kept by hand so pop() can move the
  // element out (std::priority_queue only exposes a const top()).
  struct After {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  void ready_push(Event ev) {
    ready_.push_back(std::move(ev));
    std::push_heap(ready_.begin(), ready_.end(), After{});
  }
  void pop_to_back() { std::pop_heap(ready_.begin(), ready_.end(), After{}); }

  std::array<std::array<std::vector<Event>, kBuckets>, kLevels> buckets_{};
  std::array<std::uint64_t, kLevels> occupied_{};
  std::vector<Event> ready_;
  std::int64_t cursor_ = 0;  // exclusive end of the drained window, tick-aligned
  std::size_t size_ = 0;     // events stored in buckets (ready_ counted separately)
};

}  // namespace streamlab::detail
