#include "sim/faults.hpp"

#include <algorithm>

#include "sim/network.hpp"

namespace streamlab {

bool GilbertElliottLoss::drop(Rng& rng) {
  // Transition first, then draw loss from the new state: a burst's first
  // packet is already subject to loss_bad, matching the standard
  // discrete-time formulation.
  if (bad_) {
    if (rng.chance(config_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng.chance(config_.p_good_to_bad)) bad_ = true;
  }
  const double p = bad_ ? config_.loss_bad : config_.loss_good;
  return p > 0.0 && rng.chance(p);
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage: return "outage";
    case FaultKind::kBandwidth: return "bandwidth";
    case FaultKind::kExtraDelay: return "extra-delay";
    case FaultKind::kBurstLoss: return "burst-loss";
    case FaultKind::kRandomLoss: return "random-loss";
    case FaultKind::kRouterDown: return "router-down";
  }
  return "unknown";
}

FaultScheduler::~FaultScheduler() {
  finish();
  for (EventHandle& h : handles_) h.cancel();
}

void FaultScheduler::finish() {
  // Router-down episodes dangling at the trial horizon settle exactly like
  // link episodes: drop accounting closed, obs span ended, baseline (router
  // online) restored.
  for (const auto& [index, state] : open_router_downs_) settle_router(index, state);
  open_router_downs_.clear();
  if (active_ < 0) return;
  close_accounting(static_cast<std::size_t>(active_));
  link_.clear_impairment();
  active_ = -1;
}

void FaultScheduler::add(FaultEpisode episode) {
  records_.push_back(EpisodeRecord{std::move(episode)});
}

void FaultScheduler::add_outage(SimTime start, Duration duration, std::string label) {
  FaultEpisode e;
  e.kind = FaultKind::kOutage;
  e.start = start;
  e.duration = duration;
  e.label = std::move(label);
  add(std::move(e));
}

void FaultScheduler::add_bandwidth(SimTime start, Duration duration, BitRate bandwidth,
                                   std::string label) {
  FaultEpisode e;
  e.kind = FaultKind::kBandwidth;
  e.start = start;
  e.duration = duration;
  e.bandwidth = bandwidth;
  e.label = std::move(label);
  add(std::move(e));
}

void FaultScheduler::add_extra_delay(SimTime start, Duration duration,
                                     Duration extra_delay, std::string label) {
  FaultEpisode e;
  e.kind = FaultKind::kExtraDelay;
  e.start = start;
  e.duration = duration;
  e.extra_delay = extra_delay;
  e.label = std::move(label);
  add(std::move(e));
}

void FaultScheduler::add_burst_loss(SimTime start, Duration duration,
                                    GilbertElliottConfig config, std::string label) {
  FaultEpisode e;
  e.kind = FaultKind::kBurstLoss;
  e.start = start;
  e.duration = duration;
  e.gilbert = config;
  e.label = std::move(label);
  add(std::move(e));
}

void FaultScheduler::add_random_loss(SimTime start, Duration duration, double probability,
                                     std::string label) {
  FaultEpisode e;
  e.kind = FaultKind::kRandomLoss;
  e.start = start;
  e.duration = duration;
  e.loss_probability = probability;
  e.label = std::move(label);
  add(std::move(e));
}

void FaultScheduler::add_router_down(SimTime start, Duration duration, int router_index,
                                     std::string label) {
  FaultEpisode e;
  e.kind = FaultKind::kRouterDown;
  e.start = start;
  e.duration = duration;
  e.router_index = router_index;
  e.label = std::move(label);
  add(std::move(e));
}

void FaultScheduler::add_detour_down(SimTime start, Duration duration, int detour_index,
                                     std::string label) {
  FaultEpisode e;
  e.kind = FaultKind::kRouterDown;
  e.start = start;
  e.duration = duration;
  e.router_index = detour_index;
  e.detour = true;
  e.label = std::move(label);
  add(std::move(e));
}

void FaultScheduler::arm() {
  if (armed_) return;
  armed_ = true;
  std::stable_sort(records_.begin(), records_.end(),
                   [](const EpisodeRecord& a, const EpisodeRecord& b) {
                     return a.episode.start < b.episode.start;
                   });
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const FaultEpisode& e = records_[i].episode;
    if (e.kind == FaultKind::kRouterDown) {
      handles_.push_back(loop_.schedule_at(e.start, [this, i] { apply_router(i); },
                                           obs::EventCategory::kFault));
      handles_.push_back(loop_.schedule_at(e.end(), [this, i] { clear_router(i); },
                                           obs::EventCategory::kFault));
      continue;
    }
    handles_.push_back(
        loop_.schedule_at(e.start, [this, i] { apply(i); }, obs::EventCategory::kFault));
    handles_.push_back(
        loop_.schedule_at(e.end(), [this, i] { clear(i); }, obs::EventCategory::kFault));
  }
}

void FaultScheduler::apply_router(std::size_t index) {
  EpisodeRecord& rec = records_[index];
  const FaultEpisode& e = rec.episode;
  const int bound = network_ == nullptr ? 0
                    : e.detour           ? network_->detour_hop_count()
                                         : network_->hop_count();
  if (network_ == nullptr || e.router_index < 0 || e.router_index >= bound) {
    // No network attached (or a bogus index): the episode is unschedulable.
    // Mark it settled so finish() and reports see no dangling record.
    rec.applied = true;
    rec.cleared = true;
    return;
  }
  RouterDownState state;
  state.baseline = drops_for_kind(FaultKind::kRouterDown);
  rec.applied = true;
  // Chain routers key the depth map by index, detour routers by -(index+1):
  // overlapping episodes on the same branch nest, while chain and detour
  // episodes sharing an index stay independent.
  const int depth_key = e.detour ? -(e.router_index + 1) : e.router_index;
  ++router_down_depth_[depth_key];
  Router& target = e.detour ? network_->detour_router(e.router_index)
                            : network_->router(e.router_index);
  target.set_offline(true);
  if constexpr (obs::kObsCompiledIn) {
    if (obs::Obs* obs = loop_.observer(); obs != nullptr && obs->tracing()) {
      obs::Tracer& tracer = obs->tracer();
      const std::uint16_t name = tracer.intern(
          std::string("fault:") + to_string(e.kind) +
          (e.label.empty() ? std::string() : ":" + e.label));
      state.span = tracer.begin_span(name, tracer.intern("faults"), loop_.now());
    }
  }
  open_router_downs_[index] = state;
}

void FaultScheduler::clear_router(std::size_t index) {
  const auto it = open_router_downs_.find(index);
  if (it == open_router_downs_.end()) return;  // never applied, or settled by finish()
  settle_router(index, it->second);
  open_router_downs_.erase(it);
}

void FaultScheduler::settle_router(std::size_t index, const RouterDownState& state) {
  EpisodeRecord& rec = records_[index];
  // Network-wide differencing: overlapping router-down episodes each charge
  // themselves for drops inside the overlap, mirroring how a pre-empting
  // link episode takes over the drop stream.
  rec.packets_dropped += drops_for_kind(FaultKind::kRouterDown) - state.baseline;
  rec.cleared = true;
  const int router_index = rec.episode.router_index;
  const int depth_key = rec.episode.detour ? -(router_index + 1) : router_index;
  if (--router_down_depth_[depth_key] == 0) {
    Router& target = rec.episode.detour ? network_->detour_router(router_index)
                                        : network_->router(router_index);
    target.set_offline(false);
  }
  if constexpr (obs::kObsCompiledIn) {
    if (state.span != 0) {
      if (obs::Obs* obs = loop_.observer(); obs != nullptr)
        obs->tracer().end_span(state.span, loop_.now());
    }
  }
}

void FaultScheduler::apply(std::size_t index) {
  EpisodeRecord& rec = records_[index];
  const FaultEpisode& e = rec.episode;

  // A later episode pre-empts a still-active earlier one: settle the
  // earlier episode's drop accounting before the override replaces it.
  if (active_ >= 0) close_accounting(static_cast<std::size_t>(active_));

  LinkImpairment imp;
  switch (e.kind) {
    case FaultKind::kOutage:
      imp.outage = true;
      break;
    case FaultKind::kBandwidth:
      imp.bandwidth = e.bandwidth;
      break;
    case FaultKind::kExtraDelay:
      imp.extra_delay = e.extra_delay;
      break;
    case FaultKind::kBurstLoss: {
      auto chain = std::make_shared<GilbertElliottLoss>(e.gilbert);
      chains_.push_back(chain);
      imp.loss_model = [chain](Rng& rng) { return chain->drop(rng); };
      break;
    }
    case FaultKind::kRandomLoss:
      imp.loss_probability = e.loss_probability;
      break;
    case FaultKind::kRouterDown:
      break;  // dispatched to apply_router() by arm(); never reaches here
  }
  link_.set_impairment(std::move(imp));
  rec.applied = true;
  active_ = static_cast<int>(index);
  drops_at_apply_ = drops_for_kind(e.kind);

  // Episode span on the shared "faults" track: begin here, end when the
  // episode clears or a successor pre-empts it.
  if constexpr (obs::kObsCompiledIn) {
    if (obs::Obs* obs = loop_.observer(); obs != nullptr && obs->tracing()) {
      obs::Tracer& tracer = obs->tracer();
      const std::uint16_t name = tracer.intern(
          std::string("fault:") + to_string(e.kind) +
          (e.label.empty() ? std::string() : ":" + e.label));
      active_span_ = tracer.begin_span(name, tracer.intern("faults"), loop_.now());
    }
  }
}

std::uint64_t FaultScheduler::drops_for_kind(FaultKind kind) const {
  const Link::DirectionStats& a = link_.stats_a_to_b();
  const Link::DirectionStats& b = link_.stats_b_to_a();
  switch (kind) {
    case FaultKind::kOutage:
      return a.packets_dropped_outage + b.packets_dropped_outage;
    case FaultKind::kBurstLoss:
      return a.packets_dropped_burst + b.packets_dropped_burst;
    case FaultKind::kRandomLoss:
      return a.packets_dropped_loss + b.packets_dropped_loss;
    case FaultKind::kBandwidth:
    case FaultKind::kExtraDelay:
      // These episodes don't override loss; any random-loss drops during
      // them come from the baseline config and are not the episode's doing.
      return 0;
    case FaultKind::kRouterDown: {
      // Network-wide offline swallows: a downed router is the only producer.
      if (network_ == nullptr) return 0;
      std::uint64_t total = 0;
      for (const Router* r : network_->routers()) total += r->stats().packets_dropped_offline;
      for (const Router* r : network_->detour_routers())
        total += r->stats().packets_dropped_offline;
      return total;
    }
  }
  return 0;
}

void FaultScheduler::close_accounting(std::size_t index) {
  EpisodeRecord& rec = records_[index];
  rec.packets_dropped += drops_for_kind(rec.episode.kind) - drops_at_apply_;
  rec.cleared = true;
  if constexpr (obs::kObsCompiledIn) {
    if (active_span_ != 0) {
      if (obs::Obs* obs = loop_.observer(); obs != nullptr)
        obs->tracer().end_span(active_span_, loop_.now());
      active_span_ = 0;
    }
  }
}

void FaultScheduler::clear(std::size_t index) {
  // Only the episode that currently owns the impairment may clear it; a
  // pre-empted episode's end event must not cancel its successor.
  if (active_ != static_cast<int>(index)) {
    records_[index].cleared = true;
    return;
  }
  close_accounting(index);
  link_.clear_impairment();
  active_ = -1;
}

std::uint64_t FaultScheduler::total_episode_drops() const {
  std::uint64_t total = 0;
  for (const EpisodeRecord& r : records_) total += r.packets_dropped;
  return total;
}

}  // namespace streamlab
