// ping and tracert equivalents.
//
// The paper runs ping and tracert before and after each experiment to
// characterise the path (Figures 1 and 2) and verify route stability. These
// helpers drive the same ICMP machinery inside the simulator and consume
// simulated time on the network's event loop.
#pragma once

#include <optional>
#include <vector>

#include "sim/network.hpp"

namespace streamlab {

struct PingResult {
  int sent = 0;
  int received = 0;
  /// Probes answered with ICMP Destination Unreachable — a withdrawn route
  /// fails *fast* ("Destination host unreachable" in real ping output),
  /// unlike the silent loss of an outage or black hole.
  int unreachable = 0;
  std::vector<Duration> rtts;  ///< one per received reply, in send order

  double loss_fraction() const {
    return sent == 0 ? 0.0 : 1.0 - static_cast<double>(received) / sent;
  }
  Duration min_rtt() const;
  Duration max_rtt() const;
  Duration avg_rtt() const;
};

/// Sends `count` ICMP echo requests from the network's client to `target`,
/// one per `interval`, and waits up to `timeout` for each reply.
PingResult run_ping(Network& net, Ipv4Address target, int count = 10,
                    Duration interval = Duration::millis(1000),
                    Duration timeout = Duration::millis(2000));

struct TracerouteHop {
  int ttl = 0;
  std::optional<Ipv4Address> address;  ///< nullopt = probe timed out ("*")
  Duration rtt = Duration::zero();
};

struct TracerouteResult {
  std::vector<TracerouteHop> hops;
  bool reached = false;
  /// Number of hops to the destination (routers + final host), as tracert
  /// reports it; 0 when the destination was never reached.
  int hop_count() const { return reached ? static_cast<int>(hops.size()) : 0; }
};

/// TTL-stepped echo probing from the network's client to `target`.
TracerouteResult run_traceroute(Network& net, Ipv4Address target, int max_ttl = 40,
                                Duration probe_timeout = Duration::millis(2000));

}  // namespace streamlab
