// Runtime invariant auditor + determinism probe.
//
// Large fault-injection campaigns are only as trustworthy as the worst
// unchecked trial: an invariant silently violated mid-sim poisons every
// aggregate built on top of it. The Auditor makes the simulator's core
// invariants *checked properties*: packet conservation on every link
// (injected = delivered + dropped + queued + in-flight), monotone sim-time
// dispatch, queue-occupancy bounds, TTL sanity on delivery, and session
// state-machine legality. Violations are recorded as structured
// AuditViolation records (and counted on the run's obs registry when one is
// attached) rather than asserts, so a campaign can quarantine the bad trial
// and keep the rest of the study.
//
// Cost model: a cheap sampled subset of the checks is always available —
// attaching an Auditor costs one pointer test per instrumented site and a
// counter increment on the sampled events. Building with -DSTREAMLAB_AUDIT=ON
// checks every event and adds the expensive recomputations (full queue-byte
// resum on every link enqueue).
//
// The DeterminismProbe turns "the full study is deterministic"
// (EXPERIMENTS.md) into a checked property: a running 64-bit digest of
// (sim-time, IP protocol, IP id, wire size) folded at the client NIC, with an
// optional per-event record so two runs of one seed can be compared and the
// first divergent event pinpointed by index.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "util/time.hpp"

namespace streamlab::audit {

#ifdef STREAMLAB_AUDIT
inline constexpr bool kFullAudit = true;
#else
inline constexpr bool kFullAudit = false;
#endif

enum class Invariant : std::uint8_t {
  kMonotoneTime,        ///< event dispatched before the clock's current time
  kQueueBounds,         ///< link queue exceeded its drop-tail threshold
  kTtlSanity,           ///< packet delivered with an expired/absurd TTL
  kPacketConservation,  ///< link ledger does not balance at trial end
  kSessionState,        ///< illegal player session state transition
  kRoutingLoop,         ///< forwarding tables form a cycle (TTL-storm fuel)
  kForced,              ///< test-only fault hook
  kCount,
};

const char* to_string(Invariant invariant);

/// Legal player/server session phases, shared by client and server state
/// machines so one legality table covers both:
///   client: kIdle -> kConnecting -> {kEstablished, kAbandoned};
///           kEstablished -> {kCompleted, kDead, kConnecting}
///           (kEstablished -> kConnecting is mirror failover: the session
///           re-enters connection establishment against the next server)
///   server: kIdle -> kStreaming -> kFinished
enum class SessionPhase : std::uint8_t {
  kIdle,
  kConnecting,
  kEstablished,
  kCompleted,
  kAbandoned,
  kDead,
  kStreaming,
  kFinished,
  kCount,
};

const char* to_string(SessionPhase phase);

/// True when `from -> to` is a legal transition of either state machine.
bool legal_transition(SessionPhase from, SessionPhase to);

struct AuditViolation {
  Invariant invariant = Invariant::kForced;
  SimTime time;
  std::string detail;   ///< human-readable site description
  double value = 0.0;   ///< measured quantity (bytes, ns, ttl, ...)
  double limit = 0.0;   ///< the bound it broke
};

/// Immutable summary of one trial's audit: every retained violation plus the
/// totals (retention is capped; the total keeps counting past the cap).
struct AuditReport {
  std::vector<AuditViolation> violations;
  std::uint64_t total_violations = 0;
  std::uint64_t checks_performed = 0;
  bool clean() const { return total_violations == 0; }
  /// One-line form for manifests and logs: "clean (184 checks)" or
  /// "3 violations (first: queue-bounds at t=1.2s: ...)".
  std::string summary() const;
};

class Auditor {
 public:
  struct Config {
    /// Without STREAMLAB_AUDIT, per-event checks run on every Nth event.
    /// Full-audit builds check every event regardless. Must be >= 1.
    std::uint64_t sample_every = 64;
    /// Violations retained with full detail; the rest only count.
    std::size_t max_retained = 64;
  };

  Auditor() : Auditor(Config{}) {}
  explicit Auditor(Config config);
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  // --- Hot-path hooks (inline; sampled unless kFullAudit) ---

  /// EventLoop dispatch hook: `when` must never precede the current clock.
  void on_event_dispatch(SimTime when, SimTime now) {
    if (!sampled_check()) return;
    if (when < now)
      violation(Invariant::kMonotoneTime, now, "event dispatched before now",
                static_cast<double>(when.ns()), static_cast<double>(now.ns()));
  }

  /// Link enqueue hook: drop-tail means occupancy may never exceed the limit.
  void on_link_enqueue(std::size_t queued_bytes, std::size_t limit_bytes, SimTime now,
                       const char* link) {
    if (!sampled_check()) return;
    if (queued_bytes > limit_bytes)
      violation(Invariant::kQueueBounds, now,
                std::string(link) + " queue above drop-tail limit",
                static_cast<double>(queued_bytes), static_cast<double>(limit_bytes));
  }

  /// Delivery-time TTL sanity: a router must have dropped the packet before
  /// its TTL reached zero, and nothing may inflate it past the 8-bit range.
  void on_delivery_ttl(unsigned ttl, SimTime now, const char* where) {
    if (!sampled_check()) return;
    if (ttl == 0 || ttl > 255)
      violation(Invariant::kTtlSanity, now,
                std::string(where) + " delivered packet with invalid TTL",
                static_cast<double>(ttl), 255.0);
  }

  // --- Cold checks ---

  /// Session state machine legality; records the transition as one check.
  void on_session_transition(const char* who, SessionPhase from, SessionPhase to,
                             SimTime now);

  /// Trial-end packet conservation for one link direction:
  /// injected == delivered + dropped + still-queued + in-flight.
  void check_conservation(const std::string& label, std::uint64_t injected,
                          std::uint64_t delivered, std::uint64_t dropped,
                          std::uint64_t queued, std::uint64_t in_flight, SimTime now);

  /// Folds `n` externally-performed checks into the ledger — how batch
  /// audits (e.g. Network::audit_routing's table walks) make their coverage
  /// visible in "clean (N checks)" summaries.
  void count_checks(std::uint64_t n) {
    report_.checks_performed += n;
    obs_checks_.add(n);
  }

  /// Records a violation directly (also the test-only fault hook's entry).
  void violation(Invariant invariant, SimTime now, std::string detail,
                 double value = 0.0, double limit = 0.0);
  void force_violation(std::string detail, SimTime now = SimTime::zero()) {
    violation(Invariant::kForced, now, std::move(detail));
  }

  /// Registers "audit.checks" / "audit.violations" counters so trial metric
  /// snapshots carry the audit outcome. Call once per run; `obs` must
  /// outlive this auditor.
  void attach_obs(obs::Obs& obs);

  const AuditReport& report() const { return report_; }
  std::uint64_t violations_by(Invariant invariant) const {
    return by_invariant_[static_cast<std::size_t>(invariant)];
  }

 private:
  /// Counts the event and decides whether this one runs the checks.
  bool sampled_check() {
    ++report_.checks_performed;
    obs_checks_.add();
    if constexpr (kFullAudit) return true;
    return report_.checks_performed % sample_every_ == 0;
  }

  std::uint64_t sample_every_;
  std::size_t max_retained_;
  AuditReport report_;
  std::uint64_t by_invariant_[static_cast<std::size_t>(Invariant::kCount)] = {};
  obs::Counter obs_checks_;
  obs::Counter obs_violations_;
};

/// Running digest of the packet stream crossing one observation point (the
/// client NIC). Folding is order-sensitive — index, timestamp, protocol, IP
/// id and wire size all perturb the digest — so two runs of the same seed
/// must produce equal digests event-for-event. With recording enabled the
/// per-event entry hashes are retained so first_divergence() can name the
/// exact event where two runs parted ways.
class DeterminismProbe {
 public:
  void enable_recording(bool on) { recording_ = on; }

  void fold(SimTime now, std::uint8_t category, std::uint16_t packet_id,
            std::uint64_t size) {
    std::uint64_t entry = mix(static_cast<std::uint64_t>(now.ns()) ^
                              (std::uint64_t{category} << 56) ^
                              (std::uint64_t{packet_id} << 40) ^ size);
    entry = mix(entry ^ events_);
    digest_ = mix(digest_ ^ entry);
    ++events_;
    if (recording_) entries_.push_back(entry);
  }

  std::uint64_t digest() const { return digest_; }
  std::uint64_t events() const { return events_; }
  const std::vector<std::uint64_t>& entries() const { return entries_; }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
  }

  std::uint64_t digest_ = 0x243F6A8885A308D3ull;  // pi, arbitrary non-zero
  std::uint64_t events_ = 0;
  bool recording_ = false;
  std::vector<std::uint64_t> entries_;
};

/// Index of the first event where two recorded probe streams diverge
/// (including one being a strict prefix of the other); nullopt when the
/// streams are identical.
std::optional<std::uint64_t> first_divergence(const DeterminismProbe& a,
                                              const DeterminismProbe& b);

}  // namespace streamlab::audit
