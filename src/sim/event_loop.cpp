#include "sim/event_loop.hpp"

#include <atomic>
#include <utility>
#include <vector>

namespace streamlab {

namespace {

// Per-thread EventCtl recycler, mirroring the net::Buffer slab pool: blocks
// whose refcount hits zero park on a thread-local free list (capped) and the
// next schedule_at() reuses them, so steady-state scheduling with handles
// performs no heap allocation. Thread-local (not per-loop) because a handle
// may outlive its loop; the confinement contract guarantees it dies on the
// same thread that allocated the block.
struct CtlPool {
  static constexpr std::size_t kMaxFree = 4096;
  std::vector<EventCtl*> free_list;
  EventCtl::PoolStats stats;
  ~CtlPool() {
    for (EventCtl* ctl : free_list) delete ctl;
  }
};

CtlPool& ctl_pool() {
  thread_local CtlPool pool;
  return pool;
}

std::atomic<EventLoop::Scheduler> g_default_scheduler{EventLoop::Scheduler::kWheel};

}  // namespace

EventCtl* EventCtl::acquire() {
  CtlPool& pool = ctl_pool();
  if (!pool.free_list.empty()) {
    EventCtl* ctl = pool.free_list.back();
    pool.free_list.pop_back();
    ctl->refs = 1;
    ctl->alive = true;
    ctl->live = nullptr;
    ++pool.stats.recycled;
    return ctl;
  }
  ++pool.stats.fresh;
  return new EventCtl;
}

void EventCtl::release(EventCtl* ctl) {
  CtlPool& pool = ctl_pool();
  if (pool.free_list.size() < CtlPool::kMaxFree) {
    pool.free_list.push_back(ctl);
  } else {
    delete ctl;
  }
}

EventCtl::PoolStats EventCtl::pool_stats() { return ctl_pool().stats; }

EventLoop::Scheduler EventLoop::default_scheduler() {
  return g_default_scheduler.load(std::memory_order_relaxed);
}

void EventLoop::set_default_scheduler(Scheduler scheduler) {
  g_default_scheduler.store(scheduler, std::memory_order_relaxed);
}

EventLoop::EventLoop(Scheduler scheduler) {
  if (scheduler == Scheduler::kWheel)
    wheel_ = std::make_unique<detail::TimingWheel<Event>>();
}

EventLoop::~EventLoop() {
  // Handles may outlive the loop: detach their count pointer so a late
  // cancel() flips the flag without touching freed memory.
  if (wheel_ != nullptr) {
    wheel_->for_each([](Event& ev) {
      if (EventCtl* ctl = ev.ctl.get()) ctl->live = nullptr;
    });
  } else {
    while (!heap_.empty()) {
      if (EventCtl* ctl = heap_.top().ctl.get()) ctl->live = nullptr;
      heap_.pop();
    }
  }
}

void EventLoop::enqueue(SimTime when, EventFn fn, obs::EventCategory category,
                        EventCtlRef ctl) {
  if (when < now_) when = now_;
  Event ev{when,
           (next_seq_++ << kCategoryBits) | static_cast<std::uint64_t>(category),
           std::move(fn), std::move(ctl)};
  if (wheel_ != nullptr) {
    wheel_->push(std::move(ev));
  } else {
    heap_.push(std::move(ev));
  }
  ++live_count_;
}

EventHandle EventLoop::schedule_at(SimTime when, EventFn fn,
                                   obs::EventCategory category) {
  EventCtlRef ref(EventCtl::acquire());
  ref.get()->live = &live_count_;
  EventCtlRef queued = ref;
  enqueue(when, std::move(fn), category, std::move(queued));
  return EventHandle(std::move(ref));
}

EventHandle EventLoop::schedule_in(Duration delay, EventFn fn,
                                   obs::EventCategory category) {
  return schedule_at(now_ + delay, std::move(fn), category);
}

void EventLoop::post_at(SimTime when, EventFn fn, obs::EventCategory category) {
  enqueue(when, std::move(fn), category, EventCtlRef());
}

void EventLoop::post_in(Duration delay, EventFn fn, obs::EventCategory category) {
  post_at(now_ + delay, std::move(fn), category);
}

EventLoop::Event* EventLoop::peek_next() {
  if (wheel_ != nullptr) return wheel_->peek();
  if (heap_.empty()) return nullptr;
  // The heap backend mutates the top entry in place when taking it; see
  // take_next().
  return const_cast<Event*>(&heap_.top());
}

EventLoop::Event EventLoop::take_next() {
  if (wheel_ != nullptr) return wheel_->pop();
  // Move out before popping: fn may schedule new events and reallocate.
  Event& top = const_cast<Event&>(heap_.top());
  Event ev{top.when, top.seq, std::move(top.fn), std::move(top.ctl)};
  heap_.pop();
  return ev;
}

bool EventLoop::fire_next(SimTime deadline) {
  for (;;) {
    Event* top = peek_next();
    if (top == nullptr) return false;
    if (top->when > deadline) return false;
    if (EventCtl* ctl = top->ctl.get(); ctl != nullptr && !ctl->alive) {
      // Cancelled: the live count was settled at cancel() time.
      (void)take_next();
      continue;
    }
    Event ev = take_next();
    if (auditor_ != nullptr) auditor_->on_event_dispatch(ev.when, now_);
    now_ = ev.when;
    // Settle the bookkeeping whether fn returns or throws: the event *did*
    // fire either way, so the liveness flag flips (making the handle report
    // not-pending and a late cancel() a harmless no-op — it may already be
    // false if fn cancelled its own handle, in which case cancel() settled
    // the count) and the executed count advances. Without this a throwing
    // callback would leave live_count_ permanently overstating the queue.
    // Handle-free post_* events have no control block and cannot be
    // cancelled, so their liveness settles unconditionally here.
    const auto settle = [this, &ev] {
      if (EventCtl* ctl = ev.ctl.get()) {
        if (ctl->alive) {
          ctl->alive = false;
          --live_count_;
        }
      } else {
        --live_count_;
      }
      ++executed_;
      if constexpr (obs::kObsCompiledIn) {
        if (obs_ != nullptr)
          obs_->on_loop_event(static_cast<obs::EventCategory>(ev.seq & kCategoryMask),
                              live_count_, now_);
      }
    };
    try {
      ev.fn();
    } catch (...) {
      settle();
      throw;
    }
    settle();
    return true;
  }
}

std::uint64_t EventLoop::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && fire_next(SimTime::max())) ++n;
  return n;
}

std::uint64_t EventLoop::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  while (fire_next(deadline)) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t EventLoop::run_until(SimTime deadline, std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && fire_next(deadline)) ++n;
  // Only catch the clock up once the work <= deadline is exhausted; a
  // budget-truncated run leaves the clock where it stopped so the caller
  // can resume.
  if (n < limit && now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace streamlab
