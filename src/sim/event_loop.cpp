#include "sim/event_loop.hpp"

#include <utility>

namespace streamlab {

EventLoop::~EventLoop() {
  // Handles may outlive the loop: detach their count pointer so a late
  // cancel() flips the flag without touching freed memory.
  while (!queue_.empty()) {
    if (EventCtl* ctl = queue_.top().ctl.get()) ctl->live = nullptr;
    queue_.pop();
  }
}

EventHandle EventLoop::schedule_at(SimTime when, std::function<void()> fn,
                                   obs::EventCategory category) {
  if (when < now_) when = now_;
  auto* ctl = new EventCtl;
  ctl->live = &live_count_;
  EventCtlRef ref(ctl);
  queue_.push(Event{when,
                    (next_seq_++ << kCategoryBits) | static_cast<std::uint64_t>(category),
                    std::move(fn), ref});
  ++live_count_;
  return EventHandle(std::move(ref));
}

EventHandle EventLoop::schedule_in(Duration delay, std::function<void()> fn,
                                   obs::EventCategory category) {
  return schedule_at(now_ + delay, std::move(fn), category);
}

bool EventLoop::fire_next(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > deadline) return false;
    if (!top.ctl.get()->alive) {
      // Cancelled: the live count was settled at cancel() time.
      queue_.pop();
      continue;
    }
    // Move out before popping: fn may schedule new events and reallocate.
    Event ev{top.when, top.seq, std::move(const_cast<Event&>(top).fn),
             std::move(const_cast<Event&>(top).ctl)};
    queue_.pop();
    if (auditor_ != nullptr) auditor_->on_event_dispatch(ev.when, now_);
    now_ = ev.when;
    // Settle the bookkeeping whether fn returns or throws: the event *did*
    // fire either way, so the liveness flag flips (making the handle report
    // not-pending and a late cancel() a harmless no-op — it may already be
    // false if fn cancelled its own handle, in which case cancel() settled
    // the count) and the executed count advances. Without this a throwing
    // callback would leave live_count_ permanently overstating the queue.
    const auto settle = [this, &ev] {
      if (EventCtl* ctl = ev.ctl.get(); ctl->alive) {
        ctl->alive = false;
        --live_count_;
      }
      ++executed_;
      if constexpr (obs::kObsCompiledIn) {
        if (obs_ != nullptr)
          obs_->on_loop_event(static_cast<obs::EventCategory>(ev.seq & kCategoryMask),
                              live_count_, now_);
      }
    };
    try {
      ev.fn();
    } catch (...) {
      settle();
      throw;
    }
    settle();
    return true;
  }
  return false;
}

std::uint64_t EventLoop::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && fire_next(SimTime::max())) ++n;
  return n;
}

std::uint64_t EventLoop::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  while (fire_next(deadline)) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t EventLoop::run_until(SimTime deadline, std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && fire_next(deadline)) ++n;
  // Only catch the clock up once the work <= deadline is exhausted; a
  // budget-truncated run leaves the clock where it stopped so the caller
  // can resume.
  if (n < limit && now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace streamlab
