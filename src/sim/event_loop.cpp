#include "sim/event_loop.hpp"

#include <utility>

namespace streamlab {

EventHandle EventLoop::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

EventHandle EventLoop::schedule_in(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventLoop::fire_next(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > deadline) return false;
    if (!*top.alive) {
      queue_.pop();
      continue;
    }
    // Copy out before popping: fn may schedule new events and reallocate.
    Event ev{top.when, top.seq, std::move(const_cast<Event&>(top).fn), top.alive};
    queue_.pop();
    now_ = ev.when;
    ev.fn();
    // Fired: flip the liveness flag so the handle reports not-pending and a
    // late cancel() is a harmless no-op.
    *ev.alive = false;
    ++executed_;
    return true;
  }
  return false;
}

std::uint64_t EventLoop::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && fire_next(SimTime::max())) ++n;
  return n;
}

std::uint64_t EventLoop::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  while (fire_next(deadline)) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace streamlab
