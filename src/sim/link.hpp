// Point-to-point link model.
//
// A Link is a full-duplex pipe between two (node, interface) attachments.
// Each direction has an independent drop-tail byte queue, a serialization
// stage governed by the link bandwidth, and a propagation stage with
// optional jitter and random loss. Wire size accounting includes the
// 14-byte Ethernet framing so a full-MTU IP packet occupies 1514 bytes of
// link time, matching the frame sizes the paper's sniffer records.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/node.hpp"
#include "util/rate.hpp"
#include "util/rng.hpp"

namespace streamlab {

struct LinkConfig {
  BitRate bandwidth = BitRate::mbps(10);        ///< serialization rate
  Duration propagation = Duration::millis(1);   ///< one-way propagation delay
  Duration jitter_stddev = Duration::zero();    ///< per-packet delay noise (>= 0 enforced)
  double loss_probability = 0.0;                ///< independent random loss
  std::size_t queue_limit_bytes = 256 * 1024;   ///< drop-tail threshold per direction
};

/// A transient override of a link's behaviour, applied by the fault layer
/// (sim/faults.hpp) while an impairment episode is active. Fields left at
/// their defaults keep the baseline LinkConfig behaviour.
struct LinkImpairment {
  /// Link flap: every packet reaching the wire is dropped.
  bool outage = false;
  /// Serialization-rate override (congestion epoch / rate renegotiation).
  std::optional<BitRate> bandwidth;
  /// Added one-way propagation delay (route change, bufferbloat episode).
  Duration extra_delay = Duration::zero();
  /// Override of the independent loss probability.
  std::optional<double> loss_probability;
  /// Stateful per-packet loss model (e.g. Gilbert–Elliott burst loss); when
  /// set it replaces the independent-loss draw entirely. The callback is
  /// handed the link's own Rng so runs stay deterministic.
  std::function<bool(Rng&)> loss_model;
};

class Link {
 public:
  struct DirectionStats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t packets_dropped_queue = 0;
    std::uint64_t packets_dropped_loss = 0;
    std::uint64_t packets_dropped_outage = 0;  ///< dropped by a link flap
    std::uint64_t packets_dropped_burst = 0;   ///< dropped by a loss_model
    std::uint64_t bytes_delivered = 0;
  };

  /// Attaches the two ends. `a_iface` is the interface index the packet is
  /// reported on when delivered *to* node a (and symmetrically for b).
  Link(EventLoop& loop, Rng rng, LinkConfig config, Node& a, int a_iface, Node& b,
       int b_iface);

  /// Sends from node a toward node b (direction 0) or b toward a (1).
  void send_from_a(const Ipv4Packet& packet) { send(0, packet); }
  void send_from_b(const Ipv4Packet& packet) { send(1, packet); }

  const DirectionStats& stats_a_to_b() const { return dir_[0].stats; }
  const DirectionStats& stats_b_to_a() const { return dir_[1].stats; }
  const LinkConfig& config() const { return config_; }

  /// Installs (replacing any current) or clears the active impairment.
  /// Packets already serialized or in flight are unaffected; the override
  /// applies from the next loss/delay decision onward.
  void set_impairment(LinkImpairment impairment);
  void clear_impairment() { impairment_.reset(); }
  bool impaired() const { return impairment_.has_value(); }

  /// Registers this link's metrics and trace series on `obs` under
  /// "link.<label>.*" and starts sampling queue occupancy. Typically called
  /// for a whole topology at once by Network::attach_observer().
  void set_observer(obs::Obs& obs, const std::string& label);

  /// Names this link for auditor violation reports (the auditor itself is
  /// reached through the loop). Typically called by Network::attach_auditor.
  void set_audit_label(std::string label) { audit_label_ = std::move(label); }

  /// Trial-end packet-conservation check, one ledger per direction:
  /// packets sent == delivered + dropped (queue/loss/outage/burst) +
  /// still-queued + in-flight. Holds at any instant the loop is between
  /// events, including budget-truncated trials.
  void audit_conservation(audit::Auditor& auditor, SimTime now) const;

  /// Packets dropped on the wire (outage + burst + random loss, baseline
  /// loss included) summed over both directions. Diagnostic aggregate; the
  /// fault scheduler's per-episode accounting differences only the counter
  /// matching each episode's kind.
  std::uint64_t impairment_drops() const {
    std::uint64_t total = 0;
    for (const Direction& d : dir_)
      total += d.stats.packets_dropped_loss + d.stats.packets_dropped_outage +
               d.stats.packets_dropped_burst;
    return total;
  }

 private:
  struct Direction {
    std::deque<Ipv4Packet> queue;
    std::size_t queued_bytes = 0;
    bool transmitting = false;
    SimTime last_delivery;  // FIFO guard: jitter never reorders a direction
    std::uint64_t in_flight = 0;  ///< serialized, propagation pending
    DirectionStats stats;
  };

  static std::size_t wire_size(const Ipv4Packet& p) {
    return kEthernetHeaderSize + p.total_length();
  }

  /// Registered handles, allocated only when an observer is attached; the
  /// un-instrumented cost is one null check per site.
  struct ObsState {
    obs::Obs* obs = nullptr;
    obs::Counter delivered;
    obs::Counter drops_queue;
    obs::Counter drops_loss;
    obs::Counter drops_outage;
    obs::Counter drops_burst;
    std::uint16_t queue_bytes_name[2] = {0, 0};  ///< per-direction trace series
  };

  void send(int dir, const Ipv4Packet& packet);
  bool drop_on_wire(DirectionStats& stats);
  void start_transmission(int dir);
  void finish_transmission(int dir);
  void deliver(int dir, Ipv4Packet packet);
  void sample_queue(int dir);

  EventLoop& loop_;
  Rng rng_;
  LinkConfig config_;
  std::optional<LinkImpairment> impairment_;
  Node* peer_[2];      // peer_[0] = b (receiver for dir 0), peer_[1] = a
  int peer_iface_[2];
  Direction dir_[2];
  std::unique_ptr<ObsState> obs_;
  std::string audit_label_ = "link";
};

}  // namespace streamlab
