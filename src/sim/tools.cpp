#include "sim/tools.hpp"

#include <algorithm>
#include <map>

namespace streamlab {

Duration PingResult::min_rtt() const {
  if (rtts.empty()) return Duration::zero();
  return *std::min_element(rtts.begin(), rtts.end());
}

Duration PingResult::max_rtt() const {
  if (rtts.empty()) return Duration::zero();
  return *std::max_element(rtts.begin(), rtts.end());
}

Duration PingResult::avg_rtt() const {
  if (rtts.empty()) return Duration::zero();
  std::int64_t total = 0;
  for (auto r : rtts) total += r.ns();
  return Duration(total / static_cast<std::int64_t>(rtts.size()));
}

PingResult run_ping(Network& net, Ipv4Address target, int count, Duration interval,
                    Duration timeout) {
  Host& client = net.client();
  EventLoop& loop = net.loop();
  PingResult result;
  // Echo id distinguishes this ping run from any concurrent ICMP activity.
  const std::uint16_t id = 0x7069;  // "pi"
  std::map<std::uint16_t, SimTime> sent_at;

  client.set_icmp_handler([&](const IcmpHeader& icmp, const Ipv4Header& ip,
                              std::span<const std::uint8_t> payload, SimTime when) {
    if (icmp.type == IcmpType::kDestinationUnreachable) {
      // A router on the path had no live route for our probe. The quoted
      // original header confirms it was ours and not concurrent traffic.
      ByteReader r(payload);
      const auto quoted_ip = Ipv4Header::decode(r);
      if (quoted_ip && quoted_ip->dst == target) ++result.unreachable;
      return;
    }
    if (icmp.type != IcmpType::kEchoReply || icmp.identifier != id) return;
    if (ip.src != target) return;
    auto it = sent_at.find(icmp.sequence);
    if (it == sent_at.end()) return;
    result.rtts.push_back(when - it->second);
    ++result.received;
    sent_at.erase(it);
  });

  for (int seq = 0; seq < count; ++seq) {
    loop.post_in(interval * seq, [&, seq] {
      sent_at[static_cast<std::uint16_t>(seq)] = loop.now();
      client.send_icmp_echo(target, id, static_cast<std::uint16_t>(seq));
      ++result.sent;
    });
  }
  loop.run_until(loop.now() + interval * count + timeout);
  client.set_icmp_handler({});
  return result;
}

TracerouteResult run_traceroute(Network& net, Ipv4Address target, int max_ttl,
                                Duration probe_timeout) {
  Host& client = net.client();
  EventLoop& loop = net.loop();
  TracerouteResult result;
  const std::uint16_t id = 0x7472;  // "tr"

  for (int ttl = 1; ttl <= max_ttl && !result.reached; ++ttl) {
    TracerouteHop hop;
    hop.ttl = ttl;
    bool answered = false;
    const SimTime sent = loop.now();

    client.set_icmp_handler([&](const IcmpHeader& icmp, const Ipv4Header& ip,
                                std::span<const std::uint8_t> payload, SimTime when) {
      if (answered) return;
      if (icmp.type == IcmpType::kEchoReply) {
        if (icmp.identifier != id || ip.src != target) return;
        hop.address = ip.src;
        hop.rtt = when - sent;
        answered = true;
        result.reached = true;
        return;
      }
      if (icmp.type == IcmpType::kTimeExceeded ||
          icmp.type == IcmpType::kDestinationUnreachable) {
        // The quoted original header lets us confirm the probe was ours.
        ByteReader r(payload);
        auto quoted_ip = Ipv4Header::decode(r);
        if (quoted_ip && quoted_ip->dst != target) return;
        hop.address = ip.src;
        hop.rtt = when - sent;
        answered = true;
      }
    });

    client.send_icmp_echo(target, id, static_cast<std::uint16_t>(ttl), 32,
                          static_cast<std::uint8_t>(ttl));
    // Drain events until the probe answers or times out. Event-driven exit:
    // run in small slices so `answered` is observed promptly.
    const SimTime deadline = loop.now() + probe_timeout;
    while (!answered && loop.now() < deadline) {
      loop.run_until(loop.now() + Duration::millis(1));
    }
    client.set_icmp_handler({});
    result.hops.push_back(hop);
  }
  return result;
}

}  // namespace streamlab
