// End host: UDP socket API, sending-side IP fragmentation, receiving-side
// reassembly, ICMP echo, and a promiscuous tap for the sniffer.
//
// The tap observes packets *before* reassembly — exactly what Ethereal saw
// in the paper's setup — while UDP receive handlers observe complete
// datagrams, which is what the player application sees.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/fragmentation.hpp"
#include "net/packet.hpp"
#include "sim/audit.hpp"
#include "sim/event_loop.hpp"
#include "sim/node.hpp"

namespace streamlab {

enum class TapDirection { kInbound, kOutbound };

class Host : public Node {
 public:
  using SendFn = std::function<void(const Ipv4Packet&)>;
  /// payload, remote endpoint, local receive time
  using UdpHandler = std::function<void(std::span<const std::uint8_t>, Endpoint, SimTime)>;
  /// Raw ICMP delivery (echo replies, time-exceeded, unreachable).
  using IcmpHandler =
      std::function<void(const IcmpHeader&, const Ipv4Header&, std::span<const std::uint8_t>,
                         SimTime)>;
  /// TCP segment delivery: parsed header, source address, payload after the
  /// TCP header. The TCP stack (src/tcp) installs this and demuxes by port.
  using TcpHandler = std::function<void(const TcpHeader&, Ipv4Address,
                                        std::span<const std::uint8_t>, SimTime)>;
  using TapFn = std::function<void(const Ipv4Packet&, TapDirection, SimTime)>;

  struct Stats {
    std::uint64_t udp_datagrams_sent = 0;
    std::uint64_t ip_packets_sent = 0;
    std::uint64_t udp_datagrams_received = 0;
    std::uint64_t udp_no_listener = 0;
    std::uint64_t icmp_received = 0;
  };

  Host(EventLoop& loop, std::string name, Ipv4Address address,
       std::size_t mtu = kDefaultMtu);

  Ipv4Address address() const { return address_; }

  /// Adds a secondary local address (a multipath subflow endpoint): packets
  /// whose destination matches an alias are accepted exactly like the
  /// primary address, and udp_send_from() can source datagrams from it so
  /// per-destination routes steer the subflow onto a different path.
  /// Idempotent per address.
  void add_alias(Ipv4Address alias);
  /// True when `addr` is the primary address or a registered alias.
  bool local_address(Ipv4Address addr) const;
  const std::vector<Ipv4Address>& aliases() const { return aliases_; }

  MacAddress mac() const { return mac_; }
  std::size_t mtu() const { return mtu_; }
  EventLoop& loop() { return loop_; }

  void attach_interface(SendFn send) { send_ = std::move(send); }

  /// Binds a UDP port; replaces any existing handler on that port.
  void udp_bind(std::uint16_t port, UdpHandler handler);
  void udp_unbind(std::uint16_t port);

  /// Sends a UDP datagram. Payloads whose IP datagram exceeds the MTU are
  /// fragmented by this host's IP layer (the MediaPlayer path in the paper).
  void udp_send(std::uint16_t src_port, Endpoint dst, std::span<const std::uint8_t> payload,
                std::uint8_t ttl = 64);

  /// udp_send with an explicit source address (the primary address or a
  /// registered alias) — how a multipath subflow pins its return path.
  /// Shares the IP id sequence with every other send from this host.
  void udp_send_from(Ipv4Address src, std::uint16_t src_port, Endpoint dst,
                     std::span<const std::uint8_t> payload, std::uint8_t ttl = 64);

  /// Sends an ICMP echo request (for ping / UDP-less traceroute probing).
  void send_icmp_echo(Ipv4Address dst, std::uint16_t identifier, std::uint16_t sequence,
                      std::size_t payload_bytes = 32, std::uint8_t ttl = 64);

  void set_icmp_handler(IcmpHandler handler) { icmp_handler_ = std::move(handler); }
  void set_tcp_handler(TcpHandler handler) { tcp_handler_ = std::move(handler); }

  /// Sends a raw TCP segment (the TCP stack builds headers; the host owns
  /// IP id assignment and framing).
  void tcp_send(const TcpHeader& segment, Ipv4Address dst,
                std::span<const std::uint8_t> payload, std::uint8_t ttl = 64);
  /// Installs the sniffer tap (pass nullptr-equivalent {} to remove).
  void set_tap(TapFn tap) { tap_ = std::move(tap); }

  /// Installs (or clears, with nullptr) the determinism probe: every IP
  /// packet this NIC accepts is folded into the replay digest as
  /// (sim-time, IP protocol, IP id, total length), pre-reassembly — the
  /// same vantage point as the paper's sniffer. Not owned.
  void set_determinism_probe(audit::DeterminismProbe* probe) { probe_ = probe; }

  void handle_packet(const Ipv4Packet& packet, int ingress_iface) override;

  const Stats& stats() const { return stats_; }
  const Reassembler::Stats& reassembly_stats() const { return reassembler_.stats(); }

 private:
  void transmit(const Ipv4Packet& packet);
  void deliver_datagram(const Ipv4Packet& whole);

  EventLoop& loop_;
  Ipv4Address address_;
  std::vector<Ipv4Address> aliases_;
  MacAddress mac_;
  std::size_t mtu_;
  SendFn send_;
  std::map<std::uint16_t, UdpHandler> udp_ports_;
  IcmpHandler icmp_handler_;
  TcpHandler tcp_handler_;
  TapFn tap_;
  audit::DeterminismProbe* probe_ = nullptr;
  Reassembler reassembler_;
  std::uint16_t next_ip_id_ = 1;
  Stats stats_;
};

}  // namespace streamlab
