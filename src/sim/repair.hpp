// Deterministic route repair: the simulator's control plane.
//
// A real path heals because routing protocols notice a dead neighbor (hello
// timeout), withdraw the routes through it, and let a higher-metric
// alternative take over — then converge back once the neighbor returns. This
// module is that machinery reduced to its deterministic core: a RouteRepair
// protects a span of chain routers; when any of them goes offline
// (Router::HealthListener, the sim's hello timer) it waits a configurable
// detection delay, withdraws the span's boundary primaries
// (Network::span_primaries), and — when the topology has a detour — the
// metric-shadowed backups take over. When the whole span is back online it
// waits out a hold-down and restores the primaries. Every transition is a
// plain event on the sim loop, so repaired runs replay bit-for-bit under the
// DeterminismProbe, and every transition re-runs the forwarding-loop audit
// (Network::audit_routing).
//
// Without a detour the same withdraw turns a silent black hole into fast
// failure: the boundary routers answer probes with Destination Unreachable,
// which is the signal the client's mirror failover consumes
// (players/client.hpp).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/network.hpp"

namespace streamlab {

struct RouteRepairConfig {
  /// Delay between a router going dark and the withdraw taking effect — the
  /// sim analogue of a hello/dead interval.
  Duration detection_delay = Duration::millis(300);
  /// Delay between the whole span returning and the primaries being
  /// restored, so a flapping router cannot make the tables flap with it.
  Duration hold_down = Duration::millis(700);
};

/// Event-driven withdraw/restore of the primaries crossing protected spans.
/// Construct after the Network (and its detour) is built; protects the
/// detour span automatically when one exists, or any span handed to
/// protect(). Must outlive the run (health listeners point into it).
class RouteRepair {
 public:
  struct Stats {
    std::uint64_t reroutes = 0;  ///< withdraw transitions committed
    std::uint64_t restores = 0;  ///< restore transitions committed
  };

  explicit RouteRepair(Network& network, RouteRepairConfig config = {});
  RouteRepair(const RouteRepair&) = delete;
  RouteRepair& operator=(const RouteRepair&) = delete;

  /// Protects chain routers [span_first, span_last] (bounds as in
  /// Network::span_primaries). Called by the constructor for the detour span;
  /// call again to protect additional disjoint spans.
  void protect(int span_first, int span_last);

  /// True while any protected span currently has its primaries withdrawn.
  bool rerouted() const;

  const Stats& stats() const { return stats_; }

  /// Registers "repair.reroutes"/"repair.restores" counters and emits a span
  /// on the "repair" trace track for every rerouted interval.
  void set_observer(obs::Obs& obs);

  /// Ends any reroute trace span still open at the trial horizon so
  /// truncated trials export well-formed traces. Routing state is left
  /// as-is. Idempotent.
  void finish();

 private:
  struct Span {
    int first = 0;
    int last = 0;
    std::vector<std::pair<Router*, Router::RouteId>> primaries;
    int down_count = 0;      ///< protected routers currently offline
    bool withdrawn = false;  ///< primaries currently withdrawn
    std::uint64_t trace_span = 0;
  };

  void on_health(std::size_t span_index, bool online);
  void withdraw(Span& span);
  void restore(Span& span);

  Network& network_;
  RouteRepairConfig config_;
  /// deque-like stability not needed: spans are appended only via protect()
  /// before the run; health listeners capture indices, not pointers.
  std::vector<Span> spans_;
  Stats stats_;
  struct ObsState {
    obs::Counter reroutes;
    obs::Counter restores;
  };
  ObsState obs_state_;
  obs::Obs* obs_ = nullptr;
};

}  // namespace streamlab
