#include "sim/router.hpp"

#include <algorithm>

namespace streamlab {

void Router::set_observer(obs::Obs& obs, const std::string& label) {
  if constexpr (!obs::kObsCompiledIn) {
    (void)obs;
    (void)label;
    return;
  }
  obs_ = std::make_unique<ObsState>();
  const std::string prefix = "router." + label + ".";
  obs_->forwarded = obs.registry().counter(prefix + "forwarded");
  obs_->ttl_expired = obs.registry().counter(prefix + "drops_ttl");
  obs_->no_route = obs.registry().counter(prefix + "drops_no_route");
}

void Router::attach_interface(int iface, SendFn send) {
  if (static_cast<std::size_t>(iface) >= interfaces_.size())
    interfaces_.resize(static_cast<std::size_t>(iface) + 1);
  interfaces_[static_cast<std::size_t>(iface)] = std::move(send);
}

void Router::add_route(Ipv4Address prefix, int prefix_len, int iface) {
  const std::uint32_t mask =
      prefix_len == 0 ? 0u : ~0u << (32 - prefix_len);
  routes_.push_back(Route{prefix.value() & mask, mask, prefix_len, iface});
  // Keep sorted longest-prefix-first so lookup is a linear scan to first hit.
  std::stable_sort(routes_.begin(), routes_.end(),
                   [](const Route& a, const Route& b) { return a.prefix_len > b.prefix_len; });
}

int Router::lookup(Ipv4Address dst) const {
  for (const auto& r : routes_) {
    if ((dst.value() & r.mask) == r.prefix) return r.iface;
  }
  return -1;
}

void Router::handle_packet(const Ipv4Packet& packet, int /*ingress_iface*/) {
  // Addressed to the router itself: answer pings.
  if (packet.header.dst == address_) {
    ++stats_.packets_delivered_local;
    if (packet.header.protocol == kIpProtoIcmp) {
      ByteReader r(packet.payload);
      auto icmp = IcmpHeader::decode(r);
      if (icmp && icmp->type == IcmpType::kEchoRequest) {
        IcmpHeader reply;
        reply.type = IcmpType::kEchoReply;
        reply.identifier = icmp->identifier;
        reply.sequence = icmp->sequence;
        const auto echo_payload = r.bytes(r.remaining());
        Ipv4Packet out = make_icmp_packet(address_, packet.header.src, reply,
                                          echo_payload, next_ip_id_++);
        const int iface = lookup(packet.header.src);
        if (iface >= 0 && interfaces_[static_cast<std::size_t>(iface)])
          interfaces_[static_cast<std::size_t>(iface)](out);
      }
    }
    return;
  }

  if (packet.header.ttl <= 1) {
    ++stats_.packets_ttl_expired;
    if (obs_) obs_->ttl_expired.add();
    send_icmp_error(packet, IcmpType::kTimeExceeded, 0);
    return;
  }

  const int iface = lookup(packet.header.dst);
  if (iface < 0 || static_cast<std::size_t>(iface) >= interfaces_.size() ||
      !interfaces_[static_cast<std::size_t>(iface)]) {
    ++stats_.packets_no_route;
    if (obs_) obs_->no_route.add();
    send_icmp_error(packet, IcmpType::kDestinationUnreachable, 0);
    return;
  }

  Ipv4Packet forwarded = packet;
  forwarded.header.ttl = static_cast<std::uint8_t>(packet.header.ttl - 1);
  ++stats_.packets_forwarded;
  if (obs_) obs_->forwarded.add();
  interfaces_[static_cast<std::size_t>(iface)](forwarded);
}

void Router::send_icmp_error(const Ipv4Packet& offending, IcmpType type, std::uint8_t code) {
  // RFC 792: the error carries the offending IP header + first 8 payload
  // bytes so the sender can match it to the originating probe.
  ByteWriter quoted(kIpv4HeaderSize + 8);
  offending.header.encode(quoted);
  const std::size_t quote = std::min<std::size_t>(8, offending.payload.size());
  quoted.bytes(offending.payload.bytes().subspan(0, quote));

  IcmpHeader icmp;
  icmp.type = type;
  icmp.code = code;
  Ipv4Packet out =
      make_icmp_packet(address_, offending.header.src, icmp, quoted.view(), next_ip_id_++);
  const int iface = lookup(offending.header.src);
  if (iface >= 0 && static_cast<std::size_t>(iface) < interfaces_.size() &&
      interfaces_[static_cast<std::size_t>(iface)])
    interfaces_[static_cast<std::size_t>(iface)](out);
}

}  // namespace streamlab
