#include "sim/router.hpp"

#include <algorithm>

namespace streamlab {

void Router::set_observer(obs::Obs& obs, const std::string& label) {
  if constexpr (!obs::kObsCompiledIn) {
    (void)obs;
    (void)label;
    return;
  }
  obs_ = std::make_unique<ObsState>();
  const std::string prefix = "router." + label + ".";
  obs_->forwarded = obs.registry().counter(prefix + "forwarded");
  obs_->ttl_expired = obs.registry().counter(prefix + "drops_ttl");
  obs_->no_route = obs.registry().counter(prefix + "drops_no_route");
  obs_->offline_drops = obs.registry().counter(prefix + "drops_offline");
}

void Router::attach_interface(int iface, SendFn send) {
  if (static_cast<std::size_t>(iface) >= interfaces_.size())
    interfaces_.resize(static_cast<std::size_t>(iface) + 1);
  interfaces_[static_cast<std::size_t>(iface)] = std::move(send);
}

Router::RouteId Router::add_route(Ipv4Address prefix, int prefix_len, int iface,
                                  int metric) {
  const std::uint32_t mask =
      prefix_len == 0 ? 0u : ~0u << (32 - prefix_len);
  const RouteId id = routes_.size();
  routes_.push_back(Route{prefix.value() & mask, mask, prefix_len, metric, iface});
  lookup_order_.push_back(id);
  resort_lookup_order();
  return id;
}

void Router::resort_lookup_order() {
  // Best match first: longest prefix, then lowest metric, then insertion
  // order (stable_sort keeps ids ascending within equal keys).
  std::stable_sort(lookup_order_.begin(), lookup_order_.end(),
                   [this](RouteId a, RouteId b) {
                     const Route& ra = routes_[a];
                     const Route& rb = routes_[b];
                     if (ra.prefix_len != rb.prefix_len)
                       return ra.prefix_len > rb.prefix_len;
                     return ra.metric < rb.metric;
                   });
}

void Router::withdraw_route(RouteId id) {
  if (id < routes_.size()) routes_[id].withdrawn = true;
}

void Router::restore_route(RouteId id) {
  if (id < routes_.size()) routes_[id].withdrawn = false;
}

bool Router::route_withdrawn(RouteId id) const {
  return id < routes_.size() && routes_[id].withdrawn;
}

std::vector<Router::RouteId> Router::routes_via(int iface) const {
  std::vector<RouteId> out;
  for (RouteId id = 0; id < routes_.size(); ++id) {
    if (routes_[id].iface == iface) out.push_back(id);
  }
  return out;
}

void Router::set_offline(bool offline) {
  if (offline_ == offline) return;
  offline_ = offline;
  if (health_) health_(!offline_);
}

int Router::lookup(Ipv4Address dst) const {
  for (RouteId id : lookup_order_) {
    const Route& r = routes_[id];
    if (r.withdrawn) continue;
    if ((dst.value() & r.mask) == r.prefix) return r.iface;
  }
  return -1;
}

void Router::handle_packet(const Ipv4Packet& packet, int /*ingress_iface*/) {
  // A downed router is a black hole: no forwarding, no local delivery, no
  // ICMP — exactly the silence a hello-timeout detector must turn into a
  // withdraw (sim/repair.hpp) and a client into a failover.
  if (offline_) {
    ++stats_.packets_dropped_offline;
    if (obs_) obs_->offline_drops.add();
    return;
  }

  // Addressed to the router itself: answer pings.
  if (packet.header.dst == address_) {
    ++stats_.packets_delivered_local;
    if (packet.header.protocol == kIpProtoIcmp) {
      ByteReader r(packet.payload);
      auto icmp = IcmpHeader::decode(r);
      if (icmp && icmp->type == IcmpType::kEchoRequest) {
        IcmpHeader reply;
        reply.type = IcmpType::kEchoReply;
        reply.identifier = icmp->identifier;
        reply.sequence = icmp->sequence;
        const auto echo_payload = r.bytes(r.remaining());
        Ipv4Packet out = make_icmp_packet(address_, packet.header.src, reply,
                                          echo_payload, next_ip_id_++);
        const int iface = lookup(packet.header.src);
        if (iface >= 0 && interfaces_[static_cast<std::size_t>(iface)])
          interfaces_[static_cast<std::size_t>(iface)](out);
      }
    }
    return;
  }

  if (packet.header.ttl <= 1) {
    ++stats_.packets_ttl_expired;
    if (obs_) obs_->ttl_expired.add();
    send_icmp_error(packet, IcmpType::kTimeExceeded, 0);
    return;
  }

  const int iface = lookup(packet.header.dst);
  if (iface < 0 || static_cast<std::size_t>(iface) >= interfaces_.size() ||
      !interfaces_[static_cast<std::size_t>(iface)]) {
    ++stats_.packets_no_route;
    if (obs_) obs_->no_route.add();
    send_icmp_error(packet, IcmpType::kDestinationUnreachable, 0);
    return;
  }

  Ipv4Packet forwarded = packet;
  forwarded.header.ttl = static_cast<std::uint8_t>(packet.header.ttl - 1);
  ++stats_.packets_forwarded;
  if (obs_) obs_->forwarded.add();
  interfaces_[static_cast<std::size_t>(iface)](forwarded);
}

void Router::send_icmp_error(const Ipv4Packet& offending, IcmpType type, std::uint8_t code) {
  // RFC 1122 §3.2.2: an ICMP error message must never be generated in
  // response to an ICMP error message, or to a non-first fragment. Without
  // this guard a dead span produces unreachable storms that ping-pong
  // between routers whose routes toward each other's error sources are
  // withdrawn.
  if (offending.header.is_trailing_fragment()) {
    ++stats_.icmp_errors_suppressed;
    return;
  }
  if (offending.header.protocol == kIpProtoIcmp) {
    ByteReader probe(offending.payload);
    const auto icmp = IcmpHeader::decode(probe);
    const bool is_informational =
        icmp && (icmp->type == IcmpType::kEchoRequest || icmp->type == IcmpType::kEchoReply);
    if (!is_informational) {  // undecodable ICMP is treated as an error message
      ++stats_.icmp_errors_suppressed;
      return;
    }
  }

  // RFC 792: the error carries the offending IP header + first 8 payload
  // bytes so the sender can match it to the originating probe.
  ByteWriter quoted(kIpv4HeaderSize + 8);
  offending.header.encode(quoted);
  const std::size_t quote = std::min<std::size_t>(8, offending.payload.size());
  quoted.bytes(offending.payload.bytes().subspan(0, quote));

  IcmpHeader icmp;
  icmp.type = type;
  icmp.code = code;
  Ipv4Packet out =
      make_icmp_packet(address_, offending.header.src, icmp, quoted.view(), next_ip_id_++);
  const int iface = lookup(offending.header.src);
  if (iface >= 0 && static_cast<std::size_t>(iface) < interfaces_.size() &&
      interfaces_[static_cast<std::size_t>(iface)]) {
    ++stats_.icmp_errors_sent;
    interfaces_[static_cast<std::size_t>(iface)](out);
  }
}

}  // namespace streamlab
