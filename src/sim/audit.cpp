#include "sim/audit.hpp"

#include <algorithm>
#include <cstdio>

namespace streamlab::audit {

const char* to_string(Invariant invariant) {
  switch (invariant) {
    case Invariant::kMonotoneTime: return "monotone-time";
    case Invariant::kQueueBounds: return "queue-bounds";
    case Invariant::kTtlSanity: return "ttl-sanity";
    case Invariant::kPacketConservation: return "packet-conservation";
    case Invariant::kSessionState: return "session-state";
    case Invariant::kRoutingLoop: return "routing-loop";
    case Invariant::kForced: return "forced";
    case Invariant::kCount: break;
  }
  return "unknown";
}

const char* to_string(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kIdle: return "idle";
    case SessionPhase::kConnecting: return "connecting";
    case SessionPhase::kEstablished: return "established";
    case SessionPhase::kCompleted: return "completed";
    case SessionPhase::kAbandoned: return "abandoned";
    case SessionPhase::kDead: return "dead";
    case SessionPhase::kStreaming: return "streaming";
    case SessionPhase::kFinished: return "finished";
    case SessionPhase::kCount: break;
  }
  return "unknown";
}

bool legal_transition(SessionPhase from, SessionPhase to) {
  // Bitmask of legal successor phases per source phase.
  auto bit = [](SessionPhase p) { return 1u << static_cast<unsigned>(p); };
  unsigned legal = 0;
  switch (from) {
    case SessionPhase::kIdle:
      legal = bit(SessionPhase::kConnecting) | bit(SessionPhase::kStreaming);
      break;
    case SessionPhase::kConnecting:
      legal = bit(SessionPhase::kEstablished) | bit(SessionPhase::kAbandoned);
      break;
    case SessionPhase::kEstablished:
      // kConnecting re-entry is mirror failover (players/client.hpp).
      legal = bit(SessionPhase::kCompleted) | bit(SessionPhase::kDead) |
              bit(SessionPhase::kConnecting);
      break;
    case SessionPhase::kStreaming:
      legal = bit(SessionPhase::kFinished);
      break;
    // Terminal phases admit no successor.
    case SessionPhase::kCompleted:
    case SessionPhase::kAbandoned:
    case SessionPhase::kDead:
    case SessionPhase::kFinished:
    case SessionPhase::kCount:
      legal = 0;
      break;
  }
  return (legal & bit(to)) != 0;
}

std::string AuditReport::summary() const {
  char buf[192];
  if (clean()) {
    std::snprintf(buf, sizeof buf, "clean (%llu checks)",
                  static_cast<unsigned long long>(checks_performed));
    return buf;
  }
  std::string first = violations.empty() ? std::string("detail dropped")
                                         : std::string(to_string(violations.front().invariant)) +
                                               " at " + streamlab::to_string(violations.front().time) +
                                               ": " + violations.front().detail;
  std::snprintf(buf, sizeof buf, "%llu violation%s (first: ",
                static_cast<unsigned long long>(total_violations),
                total_violations == 1 ? "" : "s");
  return std::string(buf) + first + ")";
}

Auditor::Auditor(Config config)
    : sample_every_(std::max<std::uint64_t>(1, config.sample_every)),
      max_retained_(config.max_retained) {}

void Auditor::on_session_transition(const char* who, SessionPhase from, SessionPhase to,
                                    SimTime now) {
  ++report_.checks_performed;
  obs_checks_.add();
  if (legal_transition(from, to)) return;
  violation(Invariant::kSessionState, now,
            std::string(who) + ": illegal transition " + to_string(from) + " -> " +
                to_string(to),
            static_cast<double>(static_cast<unsigned>(from)),
            static_cast<double>(static_cast<unsigned>(to)));
}

void Auditor::check_conservation(const std::string& label, std::uint64_t injected,
                                 std::uint64_t delivered, std::uint64_t dropped,
                                 std::uint64_t queued, std::uint64_t in_flight,
                                 SimTime now) {
  ++report_.checks_performed;
  obs_checks_.add();
  const std::uint64_t accounted = delivered + dropped + queued + in_flight;
  if (accounted == injected) return;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                " ledger: injected=%llu delivered=%llu dropped=%llu queued=%llu "
                "in-flight=%llu",
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(queued),
                static_cast<unsigned long long>(in_flight));
  violation(Invariant::kPacketConservation, now, label + buf,
            static_cast<double>(accounted), static_cast<double>(injected));
}

void Auditor::violation(Invariant invariant, SimTime now, std::string detail,
                        double value, double limit) {
  ++report_.total_violations;
  ++by_invariant_[static_cast<std::size_t>(invariant)];
  obs_violations_.add();
  if (report_.violations.size() < max_retained_) {
    report_.violations.push_back(
        AuditViolation{invariant, now, std::move(detail), value, limit});
  }
}

void Auditor::attach_obs(obs::Obs& obs) {
  if constexpr (!obs::kObsCompiledIn) {
    (void)obs;
    return;
  }
  obs_checks_ = obs.registry().counter("audit.checks");
  obs_violations_ = obs.registry().counter("audit.violations");
  // Checks already performed before attachment (rare; attach happens at run
  // setup) are folded in so the counter matches the report at trial end.
  obs_checks_.add(report_.checks_performed);
  obs_violations_.add(report_.total_violations);
}

std::optional<std::uint64_t> first_divergence(const DeterminismProbe& a,
                                              const DeterminismProbe& b) {
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  const std::size_t common = std::min(ea.size(), eb.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (ea[i] != eb[i]) return i;
  }
  if (ea.size() != eb.size()) return common;
  return std::nullopt;
}

}  // namespace streamlab::audit
