#include "sim/repair.hpp"

namespace streamlab {

RouteRepair::RouteRepair(Network& network, RouteRepairConfig config)
    : network_(network), config_(config) {
  if (Network::DetourControl* control = network_.detour_control(); control != nullptr)
    protect(control->span_first, control->span_last);
}

void RouteRepair::protect(int span_first, int span_last) {
  Span span;
  span.first = span_first;
  span.last = span_last;
  span.primaries = network_.span_primaries(span_first, span_last);
  const std::size_t index = spans_.size();
  spans_.push_back(std::move(span));
  for (int i = span_first; i <= span_last; ++i) {
    network_.router(i).set_health_listener(
        [this, index](bool online) { on_health(index, online); });
  }
}

bool RouteRepair::rerouted() const {
  for (const Span& span : spans_) {
    if (span.withdrawn) return true;
  }
  return false;
}

void RouteRepair::on_health(std::size_t span_index, bool online) {
  Span& span = spans_[span_index];
  if (!online) {
    ++span.down_count;
    if (span.down_count == 1) {
      // Hello timeout: commit the withdraw only if something in the span is
      // still dark when the detection delay elapses.
      network_.loop().post_in(
          config_.detection_delay,
          [this, span_index] {
            Span& s = spans_[span_index];
            if (s.down_count > 0 && !s.withdrawn) withdraw(s);
          },
          obs::EventCategory::kFault);
    }
    return;
  }
  if (span.down_count > 0) --span.down_count;
  if (span.down_count == 0 && span.withdrawn) {
    // Hold-down: restore only if the whole span is still healthy when the
    // timer fires — a router that flaps back down cancels the restore by
    // failing this check (and its own detection timer re-arms the withdraw).
    network_.loop().post_in(
        config_.hold_down,
        [this, span_index] {
          Span& s = spans_[span_index];
          if (s.down_count == 0 && s.withdrawn) restore(s);
        },
        obs::EventCategory::kFault);
  }
}

void RouteRepair::withdraw(Span& span) {
  for (auto& [router, id] : span.primaries) router->withdraw_route(id);
  span.withdrawn = true;
  ++stats_.reroutes;
  if constexpr (obs::kObsCompiledIn) {
    obs_state_.reroutes.add();
    if (obs_ != nullptr && obs_->tracing()) {
      obs::Tracer& tracer = obs_->tracer();
      span.trace_span = tracer.begin_span(
          tracer.intern("reroute:span" + std::to_string(span.first) + "-" +
                        std::to_string(span.last)),
          tracer.intern("repair"), network_.loop().now());
    }
  }
  // A bad withdraw is exactly how forwarding loops are born; check now, not
  // at trial end.
  network_.audit_routing();
}

void RouteRepair::restore(Span& span) {
  for (auto& [router, id] : span.primaries) router->restore_route(id);
  span.withdrawn = false;
  ++stats_.restores;
  if constexpr (obs::kObsCompiledIn) {
    obs_state_.restores.add();
    if (span.trace_span != 0) {
      if (obs_ != nullptr) obs_->tracer().end_span(span.trace_span, network_.loop().now());
      span.trace_span = 0;
    }
  }
  network_.audit_routing();
}

void RouteRepair::finish() {
  if constexpr (obs::kObsCompiledIn) {
    for (Span& span : spans_) {
      if (span.trace_span != 0) {
        if (obs_ != nullptr) obs_->tracer().end_span(span.trace_span, network_.loop().now());
        span.trace_span = 0;
      }
    }
  }
}

void RouteRepair::set_observer(obs::Obs& obs) {
  if constexpr (!obs::kObsCompiledIn) {
    (void)obs;
    return;
  }
  obs_ = &obs;
  obs_state_.reroutes = obs.registry().counter("repair.reroutes");
  obs_state_.restores = obs.registry().counter("repair.restores");
}

}  // namespace streamlab
