// Fault injection: scripted, time-varying link impairments.
//
// The paper's subject is *network turbulence*, but a LinkConfig is
// stationary — it cannot express the loss bursts, outages and congestion
// epochs that streaming delay buffers exist to survive (Sections 3.F, VI).
// This layer scripts impairment *episodes* onto a Link: a FaultScheduler
// applies each episode at its start time and restores the baseline when it
// ends, recording per-episode drop counts so experiments can attribute
// damage to a specific event. Loss draws go through the link's seeded Rng,
// so faulted runs replay bit-for-bit like everything else in streamlab.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/link.hpp"

namespace streamlab {

class Network;

/// Two-state Markov (Gilbert–Elliott) packet-loss model: a GOOD state with
/// near-zero loss and a BAD state with heavy loss, with per-packet
/// transition probabilities. Unlike independent Bernoulli loss at the same
/// average rate, losses arrive in *bursts* whose mean length is
/// 1 / p_bad_to_good packets — the loss pattern real congestion produces.
struct GilbertElliottConfig {
  double p_good_to_bad = 0.02;  ///< per-packet P(enter burst)
  double p_bad_to_good = 0.25;  ///< per-packet P(leave burst)
  double loss_good = 0.0;       ///< drop probability while GOOD
  double loss_bad = 0.75;       ///< drop probability while BAD

  /// Long-run fraction of packets spent in the BAD state.
  double stationary_bad() const {
    const double denom = p_good_to_bad + p_bad_to_good;
    return denom > 0.0 ? p_good_to_bad / denom : 0.0;
  }
  /// Long-run average drop probability.
  double mean_loss() const {
    const double pi_bad = stationary_bad();
    return pi_bad * loss_bad + (1.0 - pi_bad) * loss_good;
  }
};

/// The chain itself; one instance per impaired link direction-pair. The
/// state advances once per packet reaching the wire.
class GilbertElliottLoss {
 public:
  explicit GilbertElliottLoss(GilbertElliottConfig config) : config_(config) {}

  /// Advances the chain one packet and returns whether to drop it.
  bool drop(Rng& rng);
  bool in_bad_state() const { return bad_; }
  const GilbertElliottConfig& config() const { return config_; }

 private:
  GilbertElliottConfig config_;
  bool bad_ = false;
};

enum class FaultKind {
  kOutage,      ///< link flap: nothing gets through
  kBandwidth,   ///< serialization-rate reduction (congestion epoch)
  kExtraDelay,  ///< added one-way delay (route change / bufferbloat)
  kBurstLoss,   ///< Gilbert–Elliott two-state burst loss
  kRandomLoss,  ///< independent loss override
  kRouterDown,  ///< chain router fully offline: no forwarding, no ICMP
};

const char* to_string(FaultKind kind);

/// One scripted impairment episode on a link's timeline.
struct FaultEpisode {
  FaultKind kind = FaultKind::kOutage;
  SimTime start;                      ///< absolute sim time the episode begins
  Duration duration;                  ///< episode length
  BitRate bandwidth;                  ///< kBandwidth: reduced rate
  Duration extra_delay;               ///< kExtraDelay: added one-way delay
  double loss_probability = 0.0;      ///< kRandomLoss: Bernoulli override
  GilbertElliottConfig gilbert;       ///< kBurstLoss: chain parameters
  int router_index = -1;              ///< kRouterDown: chain router to down
  /// kRouterDown: `router_index` names a detour-branch router
  /// (Network::detour_router) instead of a chain router — what lets one
  /// scenario script true flap schedules on the bypass path itself.
  bool detour = false;
  std::string label;                  ///< free-form tag for reports

  SimTime end() const { return start + duration; }
  /// True when `t` falls inside [start, end).
  bool covers(SimTime t) const { return t >= start && t < end(); }
};

/// Applies a scripted sequence of FaultEpisodes to one Link. Episodes are
/// sorted by start time when armed; applying an episode replaces any active
/// impairment and the episode's end restores the unimpaired baseline (so
/// overlapping episodes truncate their predecessors rather than stacking).
class FaultScheduler {
 public:
  struct EpisodeRecord {
    FaultEpisode episode;
    bool applied = false;
    bool cleared = false;
    /// Packets dropped by this episode's own mechanism (outage, burst chain
    /// or loss override) while it was the active impairment. Bandwidth and
    /// extra-delay episodes attribute nothing here: baseline random loss
    /// occurring during them is not the episode's doing.
    std::uint64_t packets_dropped = 0;
  };

  FaultScheduler(EventLoop& loop, Link& link) : loop_(loop), link_(link) {}
  /// With a Network attached, FaultKind::kRouterDown episodes can take chain
  /// routers offline. Router-down episodes run *in parallel* with the single
  /// link-impairment slot: a router failure neither pre-empts nor is
  /// pre-empted by a concurrent link episode.
  FaultScheduler(EventLoop& loop, Link& link, Network& network)
      : loop_(loop), link_(link), network_(&network) {}
  FaultScheduler(const FaultScheduler&) = delete;
  FaultScheduler& operator=(const FaultScheduler&) = delete;
  ~FaultScheduler();

  /// Adds one episode; call before arm().
  void add(FaultEpisode episode);
  // Convenience constructors for the common episode shapes.
  void add_outage(SimTime start, Duration duration, std::string label = "outage");
  void add_bandwidth(SimTime start, Duration duration, BitRate bandwidth,
                     std::string label = "bandwidth");
  void add_extra_delay(SimTime start, Duration duration, Duration extra_delay,
                       std::string label = "delay");
  void add_burst_loss(SimTime start, Duration duration, GilbertElliottConfig config,
                      std::string label = "burst-loss");
  void add_random_loss(SimTime start, Duration duration, double probability,
                       std::string label = "random-loss");
  /// Requires the Network-attached constructor; `router_index` names a chain
  /// router (Network::router). Overlapping episodes on one router nest: it
  /// returns online only when the last one ends.
  void add_router_down(SimTime start, Duration duration, int router_index,
                       std::string label = "router-down");
  /// Like add_router_down, but `detour_index` names a router on the detour
  /// branch (Network::detour_router). Overlapping episodes nest the same
  /// way; chain and detour episodes on the same index are independent.
  void add_detour_down(SimTime start, Duration duration, int detour_index,
                       std::string label = "detour-down");

  /// Schedules every added episode on the event loop. Call exactly once,
  /// before the experiment runs past the first episode start.
  void arm();

  /// Closes out an episode still active when the trial horizon ends (budget
  /// truncation, or a script whose last episode outlives the run): settles
  /// its drop accounting, ends its obs span so Chrome traces of truncated
  /// trials show no dangling spans, and restores the unimpaired baseline.
  /// Idempotent; also invoked by the destructor.
  void finish();

  const std::vector<EpisodeRecord>& records() const { return records_; }
  /// Index of the episode currently impairing the link, -1 when none.
  int active_episode() const { return active_; }
  /// Total packets dropped across all recorded episodes.
  std::uint64_t total_episode_drops() const;

 private:
  /// Bookkeeping for one in-flight router-down episode (keyed by record
  /// index): the network-wide offline-drop count at apply time plus its obs
  /// span. Lives until clear_router() or finish() settles it.
  struct RouterDownState {
    std::uint64_t baseline = 0;
    std::uint64_t span = 0;
  };

  void apply(std::size_t index);
  void clear(std::size_t index);
  void close_accounting(std::size_t index);
  void apply_router(std::size_t index);
  void clear_router(std::size_t index);
  void settle_router(std::size_t index, const RouterDownState& state);
  /// Current drop count on the counter `kind` is accountable for (the link's
  /// direction counters; for kRouterDown the network-wide offline drops).
  std::uint64_t drops_for_kind(FaultKind kind) const;

  EventLoop& loop_;
  Link& link_;
  Network* network_ = nullptr;
  std::vector<EpisodeRecord> records_;
  std::vector<EventHandle> handles_;
  /// Chains outlive the closures that capture them (episodes may be queried
  /// after the run), hence shared ownership.
  std::vector<std::shared_ptr<GilbertElliottLoss>> chains_;
  bool armed_ = false;
  int active_ = -1;
  std::uint64_t drops_at_apply_ = 0;
  /// Trace span of the active episode (0 when none / tracing off).
  std::uint64_t active_span_ = 0;
  std::map<std::size_t, RouterDownState> open_router_downs_;
  /// Concurrent router-down episodes per router; the router comes back
  /// online when its depth returns to zero. Chain routers key by index,
  /// detour routers by -(index + 1), so episodes on the two branches never
  /// alias.
  std::map<int, int> router_down_depth_;
};

}  // namespace streamlab
