// Discrete-event simulation core.
//
// A single-threaded event loop with a deterministic total order: events fire
// in (time, insertion-sequence) order, so two events scheduled for the same
// instant run in the order they were scheduled. All of streamlab's network
// behaviour — link serialization, propagation, player send timers, client
// playout — is expressed as events on one loop.
//
// Two interchangeable scheduling backends share that contract:
//  * kWheel (default): a hierarchical timing wheel (sim/timing_wheel.hpp)
//    with O(1) insert and cursor-jump bucket drains — the city-scale backend.
//  * kHeap: the original single `std::priority_queue` — kept as the
//    reference implementation for differential tests and microbenches.
// Both fire the exact same order; campaign manifests and digests are
// byte-identical across backends (tests/sim/test_scheduler_differential.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "sim/audit.hpp"
#include "sim/event_fn.hpp"
#include "sim/timing_wheel.hpp"
#include "util/time.hpp"

namespace streamlab {

/// Per-event control block shared between the queued event and its handle.
/// Refcounted without atomics — the loop (and everything scheduled on it) is
/// single-threaded by design: a loop, its events and their handles must all
/// live and die on one thread. The parallel campaign runner relies on exactly
/// this confinement — each trial's loop is created, run and destroyed on its
/// worker thread, and nothing reachable from it ever crosses to another
/// (net::Buffer makes the same bargain; see DESIGN.md §10). `live` points at
/// the loop's live-event count so cancel() can settle it in O(1); the loop's
/// destructor nulls it out of any still-queued controls so a handle outliving
/// the loop stays harmless.
///
/// Blocks are recycled through a per-thread pool (the net::Buffer slab
/// pattern): release() returns the block to a thread-local free list instead
/// of the heap, so steady-state schedule_at() allocates nothing.
struct EventCtl {
  std::uint32_t refs = 1;
  bool alive = true;
  std::size_t* live = nullptr;

  /// Pops a recycled block from the thread-local pool (or heap-allocates).
  static EventCtl* acquire();
  /// Returns a block whose refcount hit zero to the pool (capped; overflow
  /// is freed). Called by EventCtlRef, not by users.
  static void release(EventCtl* ctl);

  struct PoolStats {
    std::uint64_t fresh = 0;     // heap allocations
    std::uint64_t recycled = 0;  // pool hits
  };
  /// Stats for the calling thread's pool (tests assert recycling kicks in).
  static PoolStats pool_stats();
};

class EventCtlRef {
 public:
  EventCtlRef() = default;
  explicit EventCtlRef(EventCtl* adopted) : p_(adopted) {}
  EventCtlRef(const EventCtlRef& other) : p_(other.p_) {
    if (p_ != nullptr) ++p_->refs;
  }
  EventCtlRef(EventCtlRef&& other) noexcept : p_(other.p_) { other.p_ = nullptr; }
  EventCtlRef& operator=(EventCtlRef other) noexcept {
    std::swap(p_, other.p_);
    return *this;
  }
  ~EventCtlRef() {
    if (p_ != nullptr && --p_->refs == 0) EventCtl::release(p_);
  }
  EventCtl* get() const { return p_; }

 private:
  EventCtl* p_ = nullptr;
};

/// Handle for cancelling a scheduled event. Default-constructed handles are
/// inert. Cancellation is O(1): the event stays queued but is skipped, and
/// the loop's live-event count is decremented immediately so empty() /
/// pending_events() stay truthful.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    EventCtl* ctl = ctl_.get();
    if (ctl != nullptr && ctl->alive) {
      ctl->alive = false;
      if (ctl->live != nullptr) --*ctl->live;
    }
  }
  bool pending() const { return ctl_.get() != nullptr && ctl_.get()->alive; }

 private:
  friend class EventLoop;
  explicit EventHandle(EventCtlRef ctl) : ctl_(std::move(ctl)) {}
  EventCtlRef ctl_;
};

class EventLoop {
 public:
  enum class Scheduler : std::uint8_t { kWheel, kHeap };

  explicit EventLoop(Scheduler scheduler = default_scheduler());
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Process-wide default backend for newly constructed loops (kWheel unless
  /// overridden). Differential tests and `turbulence_lab --scheduler` flip it
  /// to run identical scenarios through both queues; stored atomically so a
  /// main-thread override is visible to campaign worker threads.
  static Scheduler default_scheduler();
  static void set_default_scheduler(Scheduler scheduler);

  Scheduler scheduler() const { return wheel_ != nullptr ? Scheduler::kWheel : Scheduler::kHeap; }

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (clamped to now if in the past).
  /// `category` tags the event for the observer's per-category counts.
  EventHandle schedule_at(SimTime when, EventFn fn,
                          obs::EventCategory category = obs::EventCategory::kGeneric);
  /// Schedules `fn` after a relative delay.
  EventHandle schedule_in(Duration delay, EventFn fn,
                          obs::EventCategory category = obs::EventCategory::kGeneric);

  /// Handle-free scheduling: identical semantics to schedule_at/schedule_in
  /// except no EventHandle is returned, so no EventCtl control block is
  /// allocated at all. The overwhelmingly common case — fire-and-forget
  /// deliveries, send timers that never cancel — pays zero allocations when
  /// the capture fits EventFn's inline buffer.
  void post_at(SimTime when, EventFn fn,
               obs::EventCategory category = obs::EventCategory::kGeneric);
  void post_in(Duration delay, EventFn fn,
               obs::EventCategory category = obs::EventCategory::kGeneric);

  /// Runs until the queue is empty or `limit` events have fired.
  /// Returns the number of events executed.
  ///
  /// Exception safety: a callback that throws unwinds out of run()/run_until()
  /// with the loop's bookkeeping already settled — the event counts as fired,
  /// its control block is flipped so late cancels are no-ops, and empty() /
  /// pending_events() / executed_events() stay truthful. The loop remains
  /// usable: a subsequent run() continues with the next queued event.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);
  /// Runs events with time <= deadline; the clock finishes at exactly
  /// `deadline` even if the queue empties earlier.
  std::uint64_t run_until(SimTime deadline);
  /// Budgeted form: fires at most `limit` events with time <= deadline.
  /// The clock only catches up to `deadline` when the queue drained below
  /// the budget, so a truncated run can be resumed with a further call.
  std::uint64_t run_until(SimTime deadline, std::uint64_t limit);

  /// True when no *live* events remain: cancelled-but-still-queued events
  /// are excluded (they are purged lazily as the loop reaches them).
  bool empty() const { return live_count_ == 0; }
  /// Live (non-cancelled, not yet fired) events currently scheduled.
  std::size_t pending_events() const { return live_count_; }
  std::uint64_t executed_events() const { return executed_; }

  /// Attaches (or detaches, with nullptr) the run's observability context.
  /// Not owned; must outlive the loop or be detached first.
  void set_observer(obs::Obs* obs) { obs_ = obs; }
  obs::Obs* observer() const { return obs_; }

  /// Attaches (or detaches, with nullptr) the run's invariant auditor, which
  /// checks monotone dispatch here and is reachable by every component that
  /// can reach the loop (links, players). Not owned; same lifetime contract
  /// as the observer.
  void set_auditor(audit::Auditor* auditor) { auditor_ = auditor; }
  audit::Auditor* auditor() const { return auditor_; }

 private:
  // The event's category rides in the low bits of `seq` so the queue entry
  // stays compact; ordering is unaffected because the shifted insertion
  // sequence is still strictly monotone.
  static constexpr std::uint64_t kCategoryBits = 3;
  static constexpr std::uint64_t kCategoryMask = (1u << kCategoryBits) - 1;
  static_assert(static_cast<std::uint64_t>(obs::EventCategory::kCount) <=
                (std::uint64_t{1} << kCategoryBits));

  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventFn fn;
    EventCtlRef ctl;  // null for post_at/post_in events (never cancellable)
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void enqueue(SimTime when, EventFn fn, obs::EventCategory category, EventCtlRef ctl);
  Event* peek_next();
  Event take_next();
  bool fire_next(SimTime deadline);

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
  // Exactly one backend is active per loop: wheel_ when non-null, else heap_.
  // The wheel is ~70KB of bucket headers, so it lives behind a pointer and
  // the (rarely used) heap backend stays an empty vector.
  std::unique_ptr<detail::TimingWheel<Event>> wheel_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  obs::Obs* obs_ = nullptr;
  audit::Auditor* auditor_ = nullptr;
};

}  // namespace streamlab
