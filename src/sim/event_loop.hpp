// Discrete-event simulation core.
//
// A single-threaded event loop with a deterministic total order: events fire
// in (time, insertion-sequence) order, so two events scheduled for the same
// instant run in the order they were scheduled. All of streamlab's network
// behaviour — link serialization, propagation, player send timers, client
// playout — is expressed as events on one loop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace streamlab {

/// Handle for cancelling a scheduled event. Default-constructed handles are
/// inert. Cancellation is O(1): the event stays queued but is skipped.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (alive_) *alive_ = false;
  }
  bool pending() const { return alive_ && *alive_; }

 private:
  friend class EventLoop;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (clamped to now if in the past).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);
  /// Schedules `fn` after a relative delay.
  EventHandle schedule_in(Duration delay, std::function<void()> fn);

  /// Runs until the queue is empty or `limit` events have fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);
  /// Runs events with time <= deadline; the clock finishes at exactly
  /// `deadline` even if the queue empties earlier.
  std::uint64_t run_until(SimTime deadline);

  /// True when no events remain queued (cancelled events may still be
  /// counted until the loop skips past them).
  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool fire_next(SimTime deadline);

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace streamlab
