#include "sim/network.hpp"

#include <cassert>

namespace streamlab {
namespace {

// Address plan: client LAN 10.0.0.0/24, router i loopback 10.1.<i>.1,
// server subnet 192.168.100.0/24.
constexpr Ipv4Address kClientAddr{10, 0, 0, 2};
constexpr Ipv4Address kClientLanPrefix{10, 0, 0, 0};
constexpr Ipv4Address kServerSubnetPrefix{192, 168, 100, 0};

}  // namespace

Network::Network(const PathConfig& config) : config_(config), rng_(config.seed) {
  assert(config.hop_count >= 1);
  client_ = std::make_unique<Host>(loop_, "client", kClientAddr);

  for (int i = 0; i < config.hop_count; ++i) {
    routers_.push_back(std::make_unique<Router>("r" + std::to_string(i), router_address(i)));
  }

  // Per-link propagation: spread the one-way total across hop_count+1 links
  // (client->r0, r0->r1, ..., r_{n-1} has the server links added later; the
  // final server link reuses the same per-link share).
  const int link_count = config.hop_count + 1;
  const Duration per_link = Duration(config.one_way_propagation.ns() / link_count);
  const int bottleneck_index = link_count / 2;
  bottleneck_index_ = bottleneck_index;

  auto link_config = [&](int index) {
    LinkConfig lc;
    lc.propagation = per_link;
    lc.queue_limit_bytes = config.queue_limit_bytes;
    if (index == 0) {
      lc.bandwidth = config.access_bandwidth;
    } else if (index == bottleneck_index) {
      lc.bandwidth = config.bottleneck_bandwidth;
      lc.jitter_stddev = config.jitter_stddev;
      lc.loss_probability = config.loss_probability;
    } else {
      lc.bandwidth = config.backbone_bandwidth;
      // A little per-hop noise so interarrival distributions are not
      // perfectly clean even on an idle path.
      lc.jitter_stddev = Duration(config.jitter_stddev.ns() / 4);
    }
    return lc;
  };

  // client <-> r0
  {
    auto link = std::make_unique<Link>(loop_, rng_.fork(), link_config(0), *client_, 0,
                                       *routers_[0], 0);
    Link* l = link.get();
    client_->attach_interface([l](const Ipv4Packet& p) { l->send_from_a(p); });
    routers_[0]->attach_interface(0, [l](const Ipv4Packet& p) { l->send_from_b(p); });
    links_.push_back(std::move(link));
  }

  // r_{i-1} <-> r_i
  for (int i = 1; i < config.hop_count; ++i) {
    auto link = std::make_unique<Link>(loop_, rng_.fork(), link_config(i),
                                       *routers_[i - 1], 1, *routers_[i], 0);
    Link* l = link.get();
    routers_[i - 1]->attach_interface(1, [l](const Ipv4Packet& p) { l->send_from_a(p); });
    routers_[i]->attach_interface(0, [l](const Ipv4Packet& p) { l->send_from_b(p); });
    links_.push_back(std::move(link));
  }

  // Routing: toward the client everything in 10.0.0.0/16 plus each upstream
  // router address leaves via iface 0; everything else via iface 1.
  for (int i = 0; i < config.hop_count; ++i) {
    routers_[i]->add_route(kClientLanPrefix, 16, 0);
    // Upstream router loopbacks (traceroute replies traverse back through
    // them only as sources, but ping targets them as destinations).
    for (int j = 0; j < i; ++j) routers_[i]->add_route(router_address(j), 32, 0);
    for (int j = i + 1; j < config.hop_count; ++j) routers_[i]->add_route(router_address(j), 32, 1);
    if (i + 1 < config.hop_count) {
      routers_[i]->add_route(kServerSubnetPrefix, 24, 1);
    }
    // The last router's server routes are added per-server in add_server().
  }
}

std::string Network::link_label(std::size_t i) const {
  if (static_cast<int>(i) == bottleneck_index_) return "bottleneck";
  if (i == 0) return "access";
  if (i < static_cast<std::size_t>(config_.hop_count)) return "hop" + std::to_string(i);
  // Server links were appended after the path; label by position.
  return "server" + std::to_string(i - static_cast<std::size_t>(config_.hop_count));
}

void Network::attach_observer(obs::Obs& obs) {
  obs_ = &obs;
  loop_.set_observer(&obs);
  for (std::size_t i = 0; i < links_.size(); ++i)
    links_[i]->set_observer(obs, link_label(i));
  for (std::size_t i = 0; i < routers_.size(); ++i)
    routers_[i]->set_observer(obs, "r" + std::to_string(i));
}

void Network::attach_auditor(audit::Auditor& auditor) {
  auditor_ = &auditor;
  loop_.set_auditor(&auditor);
  for (std::size_t i = 0; i < links_.size(); ++i)
    links_[i]->set_audit_label(link_label(i));
}

void Network::audit_finalize(audit::Auditor& auditor) {
  for (const auto& link : links_) link->audit_conservation(auditor, loop_.now());
}

void Network::set_determinism_probe(audit::DeterminismProbe* probe) {
  client_->set_determinism_probe(probe);
}

Ipv4Address Network::router_address(int i) const {
  return Ipv4Address(10, 1, static_cast<std::uint8_t>(i), 1);
}

Host& Network::add_server(const std::string& name) {
  const Ipv4Address addr(192, 168, 100, next_server_host_octet_++);
  auto server = std::make_unique<Host>(loop_, name, addr);
  Router& edge = *routers_.back();
  const int iface = next_server_iface_++;

  LinkConfig lc;
  lc.bandwidth = config_.backbone_bandwidth;
  lc.propagation = Duration(config_.one_way_propagation.ns() / (config_.hop_count + 1));
  lc.queue_limit_bytes = config_.queue_limit_bytes;

  auto link = std::make_unique<Link>(loop_, rng_.fork(), lc, edge, iface, *server, 0);
  Link* l = link.get();
  edge.attach_interface(iface, [l](const Ipv4Packet& p) { l->send_from_a(p); });
  server->attach_interface([l](const Ipv4Packet& p) { l->send_from_b(p); });
  edge.add_route(addr, 32, iface);
  if (obs_ != nullptr) link->set_observer(*obs_, "server." + name);
  if (auditor_ != nullptr) link->set_audit_label("server." + name);
  links_.push_back(std::move(link));

  servers_.push_back(std::move(server));
  return *servers_.back();
}

std::vector<const Router*> Network::routers() const {
  std::vector<const Router*> out;
  out.reserve(routers_.size());
  for (const auto& r : routers_) out.push_back(r.get());
  return out;
}

}  // namespace streamlab
