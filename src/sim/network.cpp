#include "sim/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace streamlab {
namespace {

// Address plan: client LAN 10.0.0.0/24, router i loopback 10.1.<i>.1,
// detour router i loopback 10.2.<i>.1, server subnet 192.168.100.0/24.
constexpr Ipv4Address kClientAddr{10, 0, 0, 2};
constexpr Ipv4Address kClientLanPrefix{10, 0, 0, 0};
constexpr Ipv4Address kDetourPrefix{10, 2, 0, 0};
constexpr Ipv4Address kServerSubnetPrefix{192, 168, 100, 0};

// Interface plan: on every router iface 0 faces the client, iface 1 the
// servers; on the branch/rejoin routers iface 2 enters the detour segment.
constexpr int kDetourIface = 2;

}  // namespace

Network::Network(const PathConfig& config) : config_(config), rng_(config.seed) {
  assert(config.hop_count >= 1);
  client_ = std::make_unique<Host>(loop_, "client", kClientAddr);

  for (int i = 0; i < config.hop_count; ++i) {
    routers_.push_back(std::make_unique<Router>("r" + std::to_string(i), router_address(i)));
  }

  // Per-link propagation: spread the one-way total across hop_count+1 links
  // (client->r0, r0->r1, ..., r_{n-1} has the server links added later; the
  // final server link reuses the same per-link share).
  const int link_count = config.hop_count + 1;
  const Duration per_link = Duration(config.one_way_propagation.ns() / link_count);
  const int bottleneck_index = link_count / 2;
  bottleneck_index_ = bottleneck_index;

  auto link_config = [&](int index) {
    LinkConfig lc;
    lc.propagation = per_link;
    lc.queue_limit_bytes = config.queue_limit_bytes;
    if (index == 0) {
      lc.bandwidth = config.access_bandwidth;
    } else if (index == bottleneck_index) {
      lc.bandwidth = config.bottleneck_bandwidth;
      lc.jitter_stddev = config.jitter_stddev;
      lc.loss_probability = config.loss_probability;
    } else {
      lc.bandwidth = config.backbone_bandwidth;
      // A little per-hop noise so interarrival distributions are not
      // perfectly clean even on an idle path.
      lc.jitter_stddev = Duration(config.jitter_stddev.ns() / 4);
    }
    return lc;
  };

  // client <-> r0
  wire(link_config(0), *client_, 0, *routers_[0], 0,
       bottleneck_index == 0 ? "bottleneck" : "access");

  // r_{i-1} <-> r_i
  for (int i = 1; i < config.hop_count; ++i) {
    wire(link_config(i), *routers_[i - 1], 1, *routers_[i], 0,
         i == bottleneck_index ? "bottleneck" : "hop" + std::to_string(i));
  }

  // Routing: toward the client everything in 10.0.0.0/16 plus each upstream
  // router address leaves via iface 0; everything else via iface 1.
  for (int i = 0; i < config.hop_count; ++i) {
    routers_[i]->add_route(kClientLanPrefix, 16, 0);
    // Upstream router loopbacks (traceroute replies traverse back through
    // them only as sources, but ping targets them as destinations).
    for (int j = 0; j < i; ++j) routers_[i]->add_route(router_address(j), 32, 0);
    for (int j = i + 1; j < config.hop_count; ++j) routers_[i]->add_route(router_address(j), 32, 1);
    if (i + 1 < config.hop_count) {
      routers_[i]->add_route(kServerSubnetPrefix, 24, 1);
    }
    // The last router's server routes are added per-server in add_server().
  }

  if (config.detour) build_detour(*config.detour, per_link);
}

void Network::build_detour(const DetourConfig& detour, Duration per_link_propagation) {
  assert(detour.hops >= 1);
  assert(detour.metric > 0);
  assert(detour.span_first >= 1);
  assert(detour.span_first <= detour.span_last);
  // The branch (span_first-1) and rejoin (span_last+1) routers must both
  // exist on the chain, so the span may not include either end router.
  assert(detour.span_last <= config_.hop_count - 2);

  const int branch_index = detour.span_first - 1;
  const int rejoin_index = detour.span_last + 1;
  Router& branch = *routers_[static_cast<std::size_t>(branch_index)];
  Router& rejoin = *routers_[static_cast<std::size_t>(rejoin_index)];

  for (int i = 0; i < detour.hops; ++i) {
    detour_routers_.push_back(
        std::make_unique<Router>("d" + std::to_string(i), detour_router_address(i)));
  }

  // Detour links mirror backbone hops (bandwidth + light jitter): the detour
  // is a viable alternate path, not a degraded one — what changes under
  // reroute is the hop sequence, which is what tracert measures.
  LinkConfig lc;
  lc.bandwidth = config_.backbone_bandwidth;
  lc.propagation = per_link_propagation;
  lc.queue_limit_bytes = config_.queue_limit_bytes;
  lc.jitter_stddev = Duration(config_.jitter_stddev.ns() / 4);

  wire(lc, branch, kDetourIface, *detour_routers_.front(), 0, "detour0");
  for (int i = 1; i < detour.hops; ++i) {
    wire(lc, *detour_routers_[static_cast<std::size_t>(i - 1)], 1,
         *detour_routers_[static_cast<std::size_t>(i)], 0, "detour" + std::to_string(i));
  }
  wire(lc, *detour_routers_.back(), 1, rejoin, kDetourIface,
       "detour" + std::to_string(detour.hops));

  // Detour-segment routing (iface 0 faces the branch, iface 1 the rejoin).
  for (int i = 0; i < detour.hops; ++i) {
    Router& d = *detour_routers_[static_cast<std::size_t>(i)];
    d.add_route(kClientLanPrefix, 16, 0);
    d.add_route(kServerSubnetPrefix, 24, 1);
    // Chain loopbacks: span routers resolve toward the branch, which holds
    // their (withdrawable) /32s — so a probe to a dead span router earns a
    // Destination Unreachable at the branch instead of looping.
    for (int j = 0; j < config_.hop_count; ++j)
      d.add_route(router_address(j), 32, j <= detour.span_last ? 0 : 1);
    for (int j = 0; j < detour.hops; ++j) {
      if (j != i) d.add_route(detour_router_address(j), 32, j < i ? 0 : 1);
    }
  }

  // Chain routers reach the detour loopbacks through the nearer junction.
  for (int i = 0; i < config_.hop_count; ++i) {
    if (i == branch_index || i == rejoin_index) {
      routers_[static_cast<std::size_t>(i)]->add_route(kDetourPrefix, 16, kDetourIface);
    } else {
      routers_[static_cast<std::size_t>(i)]->add_route(kDetourPrefix, 16,
                                                       i < branch_index ? 1 : 0);
    }
  }

  // Backup routes: shadow every boundary primary that crosses the span at
  // detour.metric. They only win once the repair plane withdraws the metric-0
  // primaries (sim/repair.hpp). Span-router /32s get no backup on purpose —
  // a downed span router should answer with unreachable, not a detour loop.
  branch.add_route(kServerSubnetPrefix, 24, kDetourIface, detour.metric);
  for (int j = rejoin_index; j < config_.hop_count; ++j)
    branch.add_route(router_address(j), 32, kDetourIface, detour.metric);
  rejoin.add_route(kClientLanPrefix, 16, kDetourIface, detour.metric);
  for (int j = 0; j <= branch_index; ++j)
    rejoin.add_route(router_address(j), 32, kDetourIface, detour.metric);

  // When the rejoin is the last chain router its detour interface occupies
  // slot 2; server links start above it.
  if (rejoin_index == config_.hop_count - 1) next_server_iface_ = kDetourIface + 1;

  DetourControl control;
  control.span_first = detour.span_first;
  control.span_last = detour.span_last;
  control.branch = &branch;
  control.rejoin = &rejoin;
  control.primaries = span_primaries(detour.span_first, detour.span_last);
  detour_control_ = std::move(control);
}

Network::MultipathEndpoints Network::enable_multipath(Host& server) {
  if (!detour_control_)
    throw std::logic_error("enable_multipath: the path has no detour segment");
  Router& edge = *routers_.back();
  const int server_iface = edge.lookup(server.address());
  if (server_iface < 0)
    throw std::logic_error("enable_multipath: server is not attached to the edge router");

  MultipathEndpoints ep;
  ep.client_alias = Ipv4Address(10, 0, 0, 3);
  ep.server_alias = Ipv4Address(
      192, 168, 100,
      static_cast<std::uint8_t>((server.address().value() & 0xFF) + 100));
  client_->add_alias(ep.client_alias);
  server.add_alias(ep.server_alias);

  // Steering: /32s at metric 0 beat the /16 and /24 prefixes the aliases
  // otherwise ride, so alias traffic forks into the detour at the branch
  // (toward the server) and at the rejoin (back toward the client), and the
  // edge router delivers the server alias on the server's own link.
  detour_control_->branch->add_route(ep.server_alias, 32, kDetourIface);
  detour_control_->rejoin->add_route(ep.client_alias, 32, kDetourIface);
  edge.add_route(ep.server_alias, 32, server_iface);

  multipath_aliases_.push_back(ep.client_alias);
  multipath_aliases_.push_back(ep.server_alias);
  audit_routing();
  return ep;
}

std::vector<std::pair<Router*, Router::RouteId>> Network::span_primaries(int span_first,
                                                                         int span_last) {
  assert(span_first >= 1);
  assert(span_first <= span_last);
  assert(span_last <= config_.hop_count - 2);
  Router& branch = *routers_[static_cast<std::size_t>(span_first - 1)];
  Router& rejoin = *routers_[static_cast<std::size_t>(span_last + 1)];
  std::vector<std::pair<Router*, Router::RouteId>> primaries;
  // Everything the branch forwards into the span (iface 1: the server subnet
  // plus downstream /32s) and everything the rejoin forwards into it from the
  // far side (iface 0: the client prefix plus upstream /32s).
  for (Router::RouteId id : branch.routes_via(1)) primaries.emplace_back(&branch, id);
  for (Router::RouteId id : rejoin.routes_via(0)) primaries.emplace_back(&rejoin, id);
  return primaries;
}

Link& Network::wire(LinkConfig lc, Node& a, int a_iface, Node& b, int b_iface,
                    std::string label) {
  auto link = std::make_unique<Link>(loop_, rng_.fork(), lc, a, a_iface, b, b_iface);
  Link* l = link.get();
  if (auto* router_a = dynamic_cast<Router*>(&a)) {
    router_a->attach_interface(a_iface, [l](const Ipv4Packet& p) { l->send_from_a(p); });
    record_adjacency(*router_a, a_iface, b);
  } else {
    static_cast<Host&>(a).attach_interface([l](const Ipv4Packet& p) { l->send_from_a(p); });
  }
  if (auto* router_b = dynamic_cast<Router*>(&b)) {
    router_b->attach_interface(b_iface, [l](const Ipv4Packet& p) { l->send_from_b(p); });
    record_adjacency(*router_b, b_iface, a);
  } else {
    static_cast<Host&>(b).attach_interface([l](const Ipv4Packet& p) { l->send_from_b(p); });
  }
  if (obs_ != nullptr) link->set_observer(*obs_, label);
  if (auditor_ != nullptr) link->set_audit_label(label);
  links_.push_back(std::move(link));
  link_labels_.push_back(std::move(label));
  return *links_.back();
}

void Network::record_adjacency(const Router& from, int iface, const Node& peer) {
  auto& row = adjacency_[&from];
  if (row.size() <= static_cast<std::size_t>(iface))
    row.resize(static_cast<std::size_t>(iface) + 1, nullptr);
  row[static_cast<std::size_t>(iface)] = &peer;
}

void Network::attach_observer(obs::Obs& obs) {
  obs_ = &obs;
  loop_.set_observer(&obs);
  for (std::size_t i = 0; i < links_.size(); ++i)
    links_[i]->set_observer(obs, link_labels_[i]);
  for (const auto& router : routers_) router->set_observer(obs, router->name());
  for (const auto& router : detour_routers_) router->set_observer(obs, router->name());
}

void Network::attach_auditor(audit::Auditor& auditor) {
  auditor_ = &auditor;
  loop_.set_auditor(&auditor);
  for (std::size_t i = 0; i < links_.size(); ++i)
    links_[i]->set_audit_label(link_labels_[i]);
}

void Network::audit_finalize(audit::Auditor& auditor) {
  for (const auto& link : links_) link->audit_conservation(auditor, loop_.now());
  audit_routing();
}

void Network::audit_routing() {
  if (auditor_ == nullptr) return;
  std::vector<Ipv4Address> destinations;
  destinations.push_back(client_->address());
  for (const auto& server : servers_) destinations.push_back(server->address());
  for (const Ipv4Address alias : multipath_aliases_) destinations.push_back(alias);
  for (const auto& router : routers_) destinations.push_back(router->address());
  for (const auto& router : detour_routers_) destinations.push_back(router->address());

  std::vector<const Router*> starts = routers();
  for (const auto& router : detour_routers_) starts.push_back(router.get());

  std::vector<const Router*> visited;
  std::uint64_t walks = 0;
  for (const Router* start : starts) {
    for (const Ipv4Address dst : destinations) {
      ++walks;
      visited.clear();
      const Router* current = start;
      while (current != nullptr) {
        // Local delivery, a black-holing offline router, and no-route
        // (Destination Unreachable) all terminate a walk without a loop.
        if (current->address() == dst || current->offline()) break;
        const int iface = current->lookup(dst);
        if (iface < 0) break;
        const auto row = adjacency_.find(current);
        if (row == adjacency_.end() ||
            static_cast<std::size_t>(iface) >= row->second.size())
          break;
        const Node* peer = row->second[static_cast<std::size_t>(iface)];
        const auto* next = dynamic_cast<const Router*>(peer);
        if (next == nullptr) break;  // handed to a host: delivered
        if (std::find(visited.begin(), visited.end(), next) != visited.end()) {
          auditor_->violation(audit::Invariant::kRoutingLoop, loop_.now(),
                              "forwarding loop from " + start->name() + " toward " +
                                  dst.to_string() + " (revisits " + next->name() + ")",
                              static_cast<double>(visited.size()),
                              static_cast<double>(visited.size()));
          break;
        }
        visited.push_back(current);
        current = next;
      }
    }
  }
  auditor_->count_checks(walks);
}

void Network::set_determinism_probe(audit::DeterminismProbe* probe) {
  client_->set_determinism_probe(probe);
}

Ipv4Address Network::router_address(int i) const {
  return Ipv4Address(10, 1, static_cast<std::uint8_t>(i), 1);
}

Ipv4Address Network::detour_router_address(int i) const {
  return Ipv4Address(10, 2, static_cast<std::uint8_t>(i), 1);
}

Host& Network::add_server(const std::string& name) {
  const Ipv4Address addr(192, 168, 100, next_server_host_octet_++);
  auto server = std::make_unique<Host>(loop_, name, addr);
  Router& edge = *routers_.back();
  const int iface = next_server_iface_++;

  LinkConfig lc;
  lc.bandwidth = config_.backbone_bandwidth;
  lc.propagation = Duration(config_.one_way_propagation.ns() / (config_.hop_count + 1));
  lc.queue_limit_bytes = config_.queue_limit_bytes;

  wire(lc, edge, iface, *server, 0, "server." + name);
  edge.add_route(addr, 32, iface);

  servers_.push_back(std::move(server));
  return *servers_.back();
}

std::vector<const Router*> Network::routers() const {
  std::vector<const Router*> out;
  out.reserve(routers_.size());
  for (const auto& r : routers_) out.push_back(r.get());
  return out;
}

std::vector<const Router*> Network::detour_routers() const {
  std::vector<const Router*> out;
  out.reserve(detour_routers_.size());
  for (const auto& r : detour_routers_) out.push_back(r.get());
  return out;
}

}  // namespace streamlab
