// IPv4 router node: longest-prefix-match forwarding, TTL decrement, and
// ICMP Time Exceeded generation — the mechanism tracert relies on to
// enumerate the hops the paper plots in Figure 2.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "obs/obs.hpp"
#include "sim/node.hpp"

namespace streamlab {

class Router : public Node {
 public:
  using SendFn = std::function<void(const Ipv4Packet&)>;

  struct Stats {
    std::uint64_t packets_forwarded = 0;
    std::uint64_t packets_ttl_expired = 0;
    std::uint64_t packets_no_route = 0;
    std::uint64_t packets_delivered_local = 0;
  };

  /// `address` is the router's own address, used as the source of ICMP
  /// errors and as a ping target.
  Router(std::string name, Ipv4Address address) : Node(std::move(name)), address_(address) {}

  Ipv4Address address() const { return address_; }

  /// Registers interface `iface`'s transmit function (called by topology
  /// builders when wiring links).
  void attach_interface(int iface, SendFn send);

  /// Adds a route: destinations matching prefix/len leave via `iface`.
  /// Longer prefixes win; insertion order breaks ties.
  void add_route(Ipv4Address prefix, int prefix_len, int iface);
  /// Default route (prefix length 0).
  void add_default_route(int iface) { add_route(Ipv4Address(0), 0, iface); }

  void handle_packet(const Ipv4Packet& packet, int ingress_iface) override;

  const Stats& stats() const { return stats_; }

  /// Registers forwarding and drop counters ("router.<label>.*") on `obs`.
  void set_observer(obs::Obs& obs, const std::string& label);

 private:
  struct Route {
    std::uint32_t prefix;
    std::uint32_t mask;
    int prefix_len;
    int iface;
  };

  int lookup(Ipv4Address dst) const;
  void send_icmp_error(const Ipv4Packet& offending, IcmpType type, std::uint8_t code);

  struct ObsState {
    obs::Counter forwarded;
    obs::Counter ttl_expired;
    obs::Counter no_route;
  };

  Ipv4Address address_;
  std::vector<SendFn> interfaces_;
  std::vector<Route> routes_;
  Stats stats_;
  std::uint16_t next_ip_id_ = 1;
  std::unique_ptr<ObsState> obs_;
};

}  // namespace streamlab
