// IPv4 router node: longest-prefix-match forwarding with per-route metrics,
// TTL decrement, and ICMP Time Exceeded generation — the mechanism tracert
// relies on to enumerate the hops the paper plots in Figure 2.
//
// Self-healing support (DESIGN.md §11): routes carry a metric so a detour
// segment can install backup routes that only win once the primary is
// withdrawn; add_route() returns a RouteId the control plane (sim/repair.hpp)
// uses to withdraw/restore primaries deterministically. A router can also be
// taken fully offline (FaultKind::kRouterDown): an offline router forwards
// nothing and answers nothing — the hard node failure the repair plane and
// the client's failover machinery exist to survive.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "obs/obs.hpp"
#include "sim/node.hpp"

namespace streamlab {

class Router : public Node {
 public:
  using SendFn = std::function<void(const Ipv4Packet&)>;
  /// Stable handle to one installed route (index in insertion order).
  using RouteId = std::size_t;
  /// Hardware liveness signal: invoked on every offline<->online transition
  /// with the new state. The repair control plane subscribes to this — it is
  /// the sim equivalent of a neighbor's hello timer expiring.
  using HealthListener = std::function<void(bool online)>;

  struct Stats {
    std::uint64_t packets_forwarded = 0;
    std::uint64_t packets_ttl_expired = 0;
    std::uint64_t packets_no_route = 0;
    std::uint64_t packets_delivered_local = 0;
    std::uint64_t packets_dropped_offline = 0;  ///< swallowed while offline
    std::uint64_t icmp_errors_sent = 0;
    /// ICMP errors not generated because RFC 1122 §3.2.2 forbids them
    /// (offending packet was itself an ICMP error, or a non-first fragment).
    std::uint64_t icmp_errors_suppressed = 0;
  };

  /// `address` is the router's own address, used as the source of ICMP
  /// errors and as a ping target.
  Router(std::string name, Ipv4Address address) : Node(std::move(name)), address_(address) {}

  Ipv4Address address() const { return address_; }

  /// Registers interface `iface`'s transmit function (called by topology
  /// builders when wiring links).
  void attach_interface(int iface, SendFn send);

  /// Adds a route: destinations matching prefix/len leave via `iface`.
  /// Longer prefixes win; among equal prefix lengths the lowest metric wins;
  /// insertion order breaks remaining ties. Returns a stable id usable with
  /// withdraw_route()/restore_route().
  RouteId add_route(Ipv4Address prefix, int prefix_len, int iface, int metric = 0);
  /// Default route (prefix length 0).
  RouteId add_default_route(int iface, int metric = 0) {
    return add_route(Ipv4Address(0), 0, iface, metric);
  }

  /// Withdraws (restores) one route; a withdrawn route is skipped by lookup
  /// so an equal-prefix higher-metric backup takes over. Idempotent.
  void withdraw_route(RouteId id);
  void restore_route(RouteId id);
  bool route_withdrawn(RouteId id) const;
  std::size_t route_count() const { return routes_.size(); }
  /// Ids of every route (withdrawn or not) whose egress is `iface`, in
  /// insertion order — how the repair plane enumerates a span boundary's
  /// primaries (Network::span_primaries).
  std::vector<RouteId> routes_via(int iface) const;

  /// Takes the router fully offline (or back online): while offline every
  /// received packet is swallowed — no forwarding, no local delivery, no
  /// ICMP of any kind — and the registered health listener is notified of
  /// each transition. Idempotent per state.
  void set_offline(bool offline);
  bool offline() const { return offline_; }
  void set_health_listener(HealthListener listener) { health_ = std::move(listener); }

  /// Route lookup as forwarding would resolve it: egress interface for
  /// `dst`, or -1 when no live route matches. Exposed for the routing-loop
  /// audit walk (Network::audit_routing).
  int lookup(Ipv4Address dst) const;

  void handle_packet(const Ipv4Packet& packet, int ingress_iface) override;

  const Stats& stats() const { return stats_; }

  /// Registers forwarding and drop counters ("router.<label>.*") on `obs`.
  void set_observer(obs::Obs& obs, const std::string& label);

 private:
  struct Route {
    std::uint32_t prefix;
    std::uint32_t mask;
    int prefix_len;
    int metric;
    int iface;
    bool withdrawn = false;
  };

  void resort_lookup_order();
  void send_icmp_error(const Ipv4Packet& offending, IcmpType type, std::uint8_t code);

  struct ObsState {
    obs::Counter forwarded;
    obs::Counter ttl_expired;
    obs::Counter no_route;
    obs::Counter offline_drops;
  };

  Ipv4Address address_;
  std::vector<SendFn> interfaces_;
  std::vector<Route> routes_;           ///< insertion order; RouteId indexes this
  std::vector<std::size_t> lookup_order_;  ///< route ids, best-match-first
  Stats stats_;
  bool offline_ = false;
  HealthListener health_;
  std::uint16_t next_ip_id_ = 1;
  std::unique_ptr<ObsState> obs_;
};

}  // namespace streamlab
