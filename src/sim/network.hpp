// Topology builder: a client behind an access link, a chain of routers, and
// one or more co-located servers on the far subnet — the measurement setup
// of the paper (client on the WPI campus network, servers 15-25 hops away,
// MediaPlayer and RealPlayer servers on the same remote subnet).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/router.hpp"

namespace streamlab {

struct PathConfig {
  int hop_count = 17;                  ///< routers between client and servers
  BitRate access_bandwidth = BitRate::mbps(10);   ///< client NIC ("PCI 10M base")
  BitRate backbone_bandwidth = BitRate::mbps(100);
  BitRate bottleneck_bandwidth = BitRate::mbps(10);
  Duration one_way_propagation = Duration::millis(20);  ///< summed across links
  Duration jitter_stddev = Duration::micros(300);       ///< bottleneck link noise
  double loss_probability = 0.0;       ///< bottleneck link random loss
  std::size_t queue_limit_bytes = 256 * 1024;
  std::uint64_t seed = 42;
};

/// Owns the event loop and every node/link of one experiment topology.
class Network {
 public:
  explicit Network(const PathConfig& config);

  EventLoop& loop() { return loop_; }
  Host& client() { return *client_; }
  const PathConfig& config() const { return config_; }
  int hop_count() const { return static_cast<int>(routers_.size()); }

  /// Adds a server host on the far subnet (reachable from the client through
  /// every router). Servers added to one network share the same path, which
  /// is the paper's "same subnet, same network path" clip-selection rule.
  Host& add_server(const std::string& name);

  /// Wires one observability context through the whole topology: the event
  /// loop's observer plus per-link ("access"/"bottleneck"/"hop<i>"/
  /// "server.<name>") and per-router metric handles. Links of servers added
  /// later are instrumented as they are created. Not owned; `obs` must
  /// outlive the network.
  void attach_observer(obs::Obs& obs);

  /// Wires one invariant auditor through the topology: the event loop's
  /// dispatch check plus per-link audit labels (same naming scheme as
  /// attach_observer). Not owned; `auditor` must outlive the network.
  void attach_auditor(audit::Auditor& auditor);

  /// Trial-end audit: packet conservation on every link. Call once the loop
  /// has stopped (drained or budget-truncated); events still queued count as
  /// in-flight/queued in the ledger, so truncation is not a violation.
  void audit_finalize(audit::Auditor& auditor);

  /// Installs (or clears, with nullptr) the determinism probe on the client
  /// host — the "client NIC" fold point of the replay digest.
  void set_determinism_probe(audit::DeterminismProbe* probe);

  /// Address of router at position i (0 = nearest the client).
  Ipv4Address router_address(int i) const;

  std::vector<const Router*> routers() const;

  // --- Link access (for fault injection and stats) ---
  /// All links in creation order: [0] client access link, [1..hop_count-1]
  /// inter-router links, then one link per add_server() call.
  std::size_t link_count() const { return links_.size(); }
  Link& link(std::size_t i) { return *links_[i]; }
  /// The client's access link (client <-> first router).
  Link& access_link() { return *links_.front(); }
  /// The bottleneck link the path builder configures with the PathConfig
  /// bandwidth/jitter/loss — the natural target for fault episodes, since
  /// every server's traffic crosses it.
  Link& bottleneck_link() { return *links_[static_cast<std::size_t>(bottleneck_index_)]; }
  int bottleneck_index() const { return bottleneck_index_; }

 private:
  PathConfig config_;
  EventLoop loop_;
  Rng rng_;
  std::unique_ptr<Host> client_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Host>> servers_;
  std::vector<std::unique_ptr<Link>> links_;
  int next_server_iface_ = 1;  // iface 0 of the last router faces the client
  std::uint8_t next_server_host_octet_ = 10;
  int bottleneck_index_ = 0;
  obs::Obs* obs_ = nullptr;
  audit::Auditor* auditor_ = nullptr;

  std::string link_label(std::size_t i) const;
};

}  // namespace streamlab
