// Topology builder: a client behind an access link, a chain of routers, and
// one or more co-located servers on the far subnet — the measurement setup
// of the paper (client on the WPI campus network, servers 15-25 hops away,
// MediaPlayer and RealPlayer servers on the same remote subnet).
//
// Self-healing extension (DESIGN.md §11): the path can grow a *detour*
// segment — parallel routers bridging around a configurable span of the
// chain — so an alternate route exists when a chain router dies. Primary
// routes carry metric 0, detour routes a higher metric; the repair control
// plane (sim/repair.hpp) withdraws the primaries through a dead span and the
// backup routes take over.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/router.hpp"

namespace streamlab {

/// A redundant segment bridging around chain routers
/// [span_first, span_last]: the router *before* the span (the branch) and
/// the router *after* it (the rejoin) are connected through `hops` detour
/// routers, with backup routes at metric `metric` shadowing the metric-0
/// primaries through the span.
struct DetourConfig {
  int span_first = 3;  ///< first bypassed chain router (>= 1)
  int span_last = 4;   ///< last bypassed chain router (<= hop_count - 2)
  int hops = 2;        ///< routers on the detour segment (>= 1)
  int metric = 10;     ///< metric of the backup routes (> 0)
};

struct PathConfig {
  int hop_count = 17;                  ///< routers between client and servers
  BitRate access_bandwidth = BitRate::mbps(10);   ///< client NIC ("PCI 10M base")
  BitRate backbone_bandwidth = BitRate::mbps(100);
  BitRate bottleneck_bandwidth = BitRate::mbps(10);
  Duration one_way_propagation = Duration::millis(20);  ///< summed across links
  Duration jitter_stddev = Duration::micros(300);       ///< bottleneck link noise
  double loss_probability = 0.0;       ///< bottleneck link random loss
  std::size_t queue_limit_bytes = 256 * 1024;
  std::uint64_t seed = 42;
  /// Optional detour segment; nullopt keeps the single static chain.
  std::optional<DetourConfig> detour;
};

/// Owns the event loop and every node/link of one experiment topology.
class Network {
 public:
  /// The repair plane's handle on the detour: which chain routers it
  /// protects and which metric-0 primaries to withdraw so the backup routes
  /// through the detour take over.
  struct DetourControl {
    int span_first = 0;
    int span_last = 0;
    Router* branch = nullptr;  ///< chain router where the detour forks off
    Router* rejoin = nullptr;  ///< chain router where it rejoins
    /// Primary routes through the span: the branch's server-subnet and
    /// span-router /32 routes plus the rejoin's client-prefix and
    /// span-router /32 routes.
    std::vector<std::pair<Router*, Router::RouteId>> primaries;
  };

  explicit Network(const PathConfig& config);

  EventLoop& loop() { return loop_; }
  Host& client() { return *client_; }
  const PathConfig& config() const { return config_; }
  int hop_count() const { return static_cast<int>(routers_.size()); }

  /// Adds a server host on the far subnet (reachable from the client through
  /// every router). Servers added to one network share the same path, which
  /// is the paper's "same subnet, same network path" clip-selection rule.
  Host& add_server(const std::string& name);

  /// Wires one observability context through the whole topology: the event
  /// loop's observer plus per-link ("access"/"bottleneck"/"hop<i>"/
  /// "detour<i>"/"server.<name>") and per-router metric handles. Links of
  /// servers added later are instrumented as they are created. Not owned;
  /// `obs` must outlive the network.
  void attach_observer(obs::Obs& obs);

  /// Wires one invariant auditor through the topology: the event loop's
  /// dispatch check plus per-link audit labels (same naming scheme as
  /// attach_observer). Not owned; `auditor` must outlive the network.
  void attach_auditor(audit::Auditor& auditor);

  /// Trial-end audit: packet conservation on every link plus a forwarding-
  /// table loop walk. Call once the loop has stopped (drained or
  /// budget-truncated); events still queued count as in-flight/queued in the
  /// ledger, so truncation is not a violation.
  void audit_finalize(audit::Auditor& auditor);

  /// Forwarding-table loop audit: walks every router's tables toward the
  /// client and every server and reports an audit::Invariant::kRoutingLoop
  /// violation when any walk revisits a router — the condition that turns a
  /// misconfigured repair into a TTL-exceeded storm. No-op without an
  /// attached auditor; also run by audit_finalize() and by the repair plane
  /// after every withdraw/restore.
  void audit_routing();

  /// Installs (or clears, with nullptr) the determinism probe on the client
  /// host — the "client NIC" fold point of the replay digest.
  void set_determinism_probe(audit::DeterminismProbe* probe);

  /// Address of router at position i (0 = nearest the client).
  Ipv4Address router_address(int i) const;
  /// Address of detour router at position i (0 = nearest the branch).
  Ipv4Address detour_router_address(int i) const;

  std::vector<const Router*> routers() const;
  /// Mutable access for fault injection (FaultKind::kRouterDown) and tests.
  Router& router(int i) { return *routers_[static_cast<std::size_t>(i)]; }

  bool has_detour() const { return detour_control_.has_value(); }
  std::vector<const Router*> detour_routers() const;
  int detour_hop_count() const { return static_cast<int>(detour_routers_.size()); }
  Router& detour_router(int i) { return *detour_routers_[static_cast<std::size_t>(i)]; }
  /// nullptr when the path was built without a detour.
  DetourControl* detour_control() {
    return detour_control_ ? &*detour_control_ : nullptr;
  }

  /// Alias pair pinning one multipath subflow onto the detour segment
  /// (DESIGN.md §16): data addressed between these two addresses crosses
  /// the detour in both directions while primary-addressed traffic keeps
  /// the chain.
  struct MultipathEndpoints {
    Ipv4Address client_alias;
    Ipv4Address server_alias;
  };

  /// Registers a client alias and a server alias (for `server`, which must
  /// have been created by add_server()) and installs metric-0 /32 steering
  /// routes: the branch router sends the server alias into the detour, the
  /// rejoin router sends the client alias back through it, and the edge
  /// router delivers the server alias on the server's own interface. The
  /// aliases ride the existing /16 and /24 prefixes everywhere else, so no
  /// other table changes. Requires a detour; throws std::logic_error
  /// without one.
  MultipathEndpoints enable_multipath(Host& server);

  /// The metric-0 primaries that forward across chain span
  /// [span_first, span_last]: everything the boundary routers would send into
  /// it. The repair plane withdraws exactly these when a span router dies —
  /// with a detour the backups take over, without one the boundary answers
  /// probes with Destination Unreachable instead of black-holing.
  std::vector<std::pair<Router*, Router::RouteId>> span_primaries(int span_first,
                                                                  int span_last);

  // --- Link access (for fault injection and stats) ---
  /// All links in creation order: [0] client access link, [1..hop_count-1]
  /// inter-router links, then the detour links (when configured), then one
  /// link per add_server() call.
  std::size_t link_count() const { return links_.size(); }
  Link& link(std::size_t i) { return *links_[i]; }
  /// The client's access link (client <-> first router).
  Link& access_link() { return *links_.front(); }
  /// The bottleneck link the path builder configures with the PathConfig
  /// bandwidth/jitter/loss — the natural target for fault episodes, since
  /// every server's traffic crosses it.
  Link& bottleneck_link() { return *links_[static_cast<std::size_t>(bottleneck_index_)]; }
  int bottleneck_index() const { return bottleneck_index_; }

 private:
  PathConfig config_;
  EventLoop loop_;
  Rng rng_;
  std::unique_ptr<Host> client_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Router>> detour_routers_;
  std::vector<std::unique_ptr<Host>> servers_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::string> link_labels_;  ///< parallel to links_
  std::optional<DetourControl> detour_control_;
  /// Alias addresses registered by enable_multipath(), included in the
  /// routing-loop audit walk's destination set.
  std::vector<Ipv4Address> multipath_aliases_;
  /// Per-router egress adjacency (iface index -> peer node), for the
  /// routing-loop audit walk.
  std::map<const Router*, std::vector<const Node*>> adjacency_;
  int next_server_iface_ = 1;  // iface 0 of the last router faces the client
  std::uint8_t next_server_host_octet_ = 10;
  int bottleneck_index_ = 0;
  obs::Obs* obs_ = nullptr;
  audit::Auditor* auditor_ = nullptr;

  void build_detour(const DetourConfig& detour, Duration per_link_propagation);
  void record_adjacency(const Router& from, int iface, const Node& peer);
  Link& wire(LinkConfig lc, Node& a, int a_iface, Node& b, int b_iface,
             std::string label);
};

}  // namespace streamlab
