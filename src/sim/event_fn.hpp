// Small-buffer-optimized event callback.
//
// `std::function<void()>` heap-allocates for any capture larger than two
// pointers, which at city-scale fleet sizes means one allocation per
// scheduled event. EventFn is a move-only callable with 48 bytes of inline
// storage — enough for every capture the players, links and fleet sessions
// actually schedule (a couple of pointers, an index, a Buffer) — so the
// common path stores the closure directly inside the queued event. Larger
// or throwing-move captures fall back to a single heap cell, preserving
// std::function semantics for the rare big capture.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace streamlab {

class EventFn {
 public:
  /// Inline capture budget. Sized so the queued Event (when + seq + fn + ctl)
  /// still packs a handful per cache-line pair; captures up to this size with
  /// a noexcept move constructor stay allocation-free.
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adapter
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->call(buf_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the capture lives in the inline buffer (no heap cell).
  bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*call)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        auto* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
      true};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**reinterpret_cast<D**>(p))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* p) { delete *reinterpret_cast<D**>(p); },
      false};

  void steal(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace streamlab
