#include "sim/link.hpp"

#include <algorithm>

namespace streamlab {

Link::Link(EventLoop& loop, Rng rng, LinkConfig config, Node& a, int a_iface, Node& b,
           int b_iface)
    : loop_(loop), rng_(std::move(rng)), config_(config) {
  peer_[0] = &b;
  peer_iface_[0] = b_iface;
  peer_[1] = &a;
  peer_iface_[1] = a_iface;
}

void Link::set_observer(obs::Obs& obs, const std::string& label) {
  if constexpr (!obs::kObsCompiledIn) {
    (void)obs;
    (void)label;
    return;
  }
  obs_ = std::make_unique<ObsState>();
  obs_->obs = &obs;
  const std::string prefix = "link." + label + ".";
  obs_->delivered = obs.registry().counter(prefix + "delivered");
  obs_->drops_queue = obs.registry().counter(prefix + "drops_queue");
  obs_->drops_loss = obs.registry().counter(prefix + "drops_loss");
  obs_->drops_outage = obs.registry().counter(prefix + "drops_outage");
  obs_->drops_burst = obs.registry().counter(prefix + "drops_burst");
  obs_->queue_bytes_name[0] = obs.tracer().intern(prefix + "queue_bytes.ab");
  obs_->queue_bytes_name[1] = obs.tracer().intern(prefix + "queue_bytes.ba");
}

void Link::sample_queue(int dir) {
  obs_->obs->tracer().sample(obs_->queue_bytes_name[dir], loop_.now(),
                             static_cast<double>(dir_[dir].queued_bytes));
}

void Link::send(int dir, const Ipv4Packet& packet) {
  Direction& d = dir_[dir];
  ++d.stats.packets_sent;
  const std::size_t size = wire_size(packet);
  if (d.queued_bytes + size > config_.queue_limit_bytes) {
    ++d.stats.packets_dropped_queue;
    if (obs_) obs_->drops_queue.add();
    return;
  }
  d.queue.push_back(packet);
  d.queued_bytes += size;
  if (audit::Auditor* a = loop_.auditor()) {
    a->on_link_enqueue(d.queued_bytes, config_.queue_limit_bytes, loop_.now(),
                       audit_label_.c_str());
    if constexpr (audit::kFullAudit) {
      // Full audit recomputes the byte ledger from scratch on every enqueue:
      // the incremental queued_bytes must equal the sum over queued packets.
      std::size_t total = 0;
      for (const Ipv4Packet& q : d.queue) total += wire_size(q);
      if (total != d.queued_bytes)
        a->violation(audit::Invariant::kQueueBounds, loop_.now(),
                     audit_label_ + " queued_bytes out of sync with queue contents",
                     static_cast<double>(d.queued_bytes), static_cast<double>(total));
    }
  }
  if (obs_) sample_queue(dir);
  if (!d.transmitting) start_transmission(dir);
}

void Link::set_impairment(LinkImpairment impairment) {
  impairment_ = std::move(impairment);
}

void Link::start_transmission(int dir) {
  Direction& d = dir_[dir];
  if (d.queue.empty()) {
    d.transmitting = false;
    return;
  }
  d.transmitting = true;
  const BitRate bandwidth = impairment_ && impairment_->bandwidth
                                ? *impairment_->bandwidth
                                : config_.bandwidth;
  const Duration tx = bandwidth.transmission_time(wire_size(d.queue.front()));
  loop_.post_in(tx, [this, dir] { finish_transmission(dir); },
                    obs::EventCategory::kLink);
}

bool Link::drop_on_wire(DirectionStats& stats) {
  if (impairment_) {
    if (impairment_->outage) {
      ++stats.packets_dropped_outage;
      if (obs_) obs_->drops_outage.add();
      return true;
    }
    if (impairment_->loss_model) {
      if (impairment_->loss_model(rng_)) {
        ++stats.packets_dropped_burst;
        if (obs_) obs_->drops_burst.add();
        return true;
      }
      return false;
    }
  }
  const double p = impairment_ && impairment_->loss_probability
                       ? *impairment_->loss_probability
                       : config_.loss_probability;
  if (p > 0.0 && rng_.chance(p)) {
    ++stats.packets_dropped_loss;
    if (obs_) obs_->drops_loss.add();
    return true;
  }
  return false;
}

void Link::finish_transmission(int dir) {
  Direction& d = dir_[dir];
  Ipv4Packet packet = std::move(d.queue.front());
  d.queue.pop_front();
  d.queued_bytes -= wire_size(packet);
  if (obs_) sample_queue(dir);

  if (drop_on_wire(d.stats)) {
    // fall through to the next queued packet
  } else {
    Duration delay = config_.propagation;
    if (impairment_) delay += impairment_->extra_delay;
    if (config_.jitter_stddev > Duration::zero()) {
      const double noise = rng_.normal(0.0, config_.jitter_stddev.to_seconds());
      delay += Duration::from_seconds(std::max(0.0, noise));
    }
    // A physical pipe cannot reorder: clamp delivery to after the previous
    // packet in this direction.
    SimTime deliver_at = loop_.now() + delay;
    if (deliver_at < d.last_delivery) deliver_at = d.last_delivery;
    d.last_delivery = deliver_at;
    ++d.in_flight;
    loop_.post_at(deliver_at, [this, dir, p = std::move(packet)] { deliver(dir, p); },
                      obs::EventCategory::kLink);
  }
  start_transmission(dir);
}

void Link::deliver(int dir, Ipv4Packet packet) {
  Direction& d = dir_[dir];
  --d.in_flight;
  ++d.stats.packets_delivered;
  d.stats.bytes_delivered += wire_size(packet);
  if (obs_) obs_->delivered.add();
  if (audit::Auditor* a = loop_.auditor())
    a->on_delivery_ttl(packet.header.ttl, loop_.now(), audit_label_.c_str());
  peer_[dir]->handle_packet(packet, peer_iface_[dir]);
}

void Link::audit_conservation(audit::Auditor& auditor, SimTime now) const {
  static const char* const kDirName[2] = {".ab", ".ba"};
  for (int dir = 0; dir < 2; ++dir) {
    const Direction& d = dir_[dir];
    const DirectionStats& s = d.stats;
    const std::uint64_t dropped = s.packets_dropped_queue + s.packets_dropped_loss +
                                  s.packets_dropped_outage + s.packets_dropped_burst;
    auditor.check_conservation(audit_label_ + kDirName[dir], s.packets_sent,
                               s.packets_delivered, dropped, d.queue.size(),
                               d.in_flight, now);
  }
}

}  // namespace streamlab
