// Base interface for anything attached to a link: hosts and routers.
#pragma once

#include <string>

#include "net/packet.hpp"
#include "sim/event_loop.hpp"

namespace streamlab {

/// A network node receives IPv4 packets from its interfaces. Interface
/// indices are node-local (a host has one, a router has several).
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }

  /// Called by the attached link when a packet finishes propagation.
  virtual void handle_packet(const Ipv4Packet& packet, int ingress_iface) = 0;

 private:
  std::string name_;
};

}  // namespace streamlab
