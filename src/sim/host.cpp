#include "sim/host.hpp"

#include <algorithm>
#include <vector>

namespace streamlab {

// The MAC is derived from the host's IPv4 address rather than a global NIC
// counter: addresses are unique within a topology, the derivation is
// deterministic regardless of how many trials ran before (or run
// concurrently on other threads), and it removes the last mutable global
// the parallel campaign runner would otherwise race on.
Host::Host(EventLoop& loop, std::string name, Ipv4Address address, std::size_t mtu)
    : Node(std::move(name)),
      loop_(loop),
      address_(address),
      mac_(MacAddress::for_nic(address.value())),
      mtu_(mtu) {}

void Host::add_alias(Ipv4Address alias) {
  if (alias == address_) return;
  if (std::find(aliases_.begin(), aliases_.end(), alias) != aliases_.end()) return;
  aliases_.push_back(alias);
}

bool Host::local_address(Ipv4Address addr) const {
  if (addr == address_) return true;
  return std::find(aliases_.begin(), aliases_.end(), addr) != aliases_.end();
}

void Host::udp_bind(std::uint16_t port, UdpHandler handler) {
  udp_ports_[port] = std::move(handler);
}

void Host::udp_unbind(std::uint16_t port) { udp_ports_.erase(port); }

void Host::udp_send(std::uint16_t src_port, Endpoint dst,
                    std::span<const std::uint8_t> payload, std::uint8_t ttl) {
  udp_send_from(address_, src_port, dst, payload, ttl);
}

void Host::udp_send_from(Ipv4Address src, std::uint16_t src_port, Endpoint dst,
                         std::span<const std::uint8_t> payload, std::uint8_t ttl) {
  const Ipv4Packet datagram =
      make_udp_packet(Endpoint{src, src_port}, dst, payload, next_ip_id_++, ttl);
  ++stats_.udp_datagrams_sent;
  for (const auto& fragment : fragment_packet(datagram, mtu_)) transmit(fragment);
}

void Host::send_icmp_echo(Ipv4Address dst, std::uint16_t identifier, std::uint16_t sequence,
                          std::size_t payload_bytes, std::uint8_t ttl) {
  IcmpHeader icmp;
  icmp.type = IcmpType::kEchoRequest;
  icmp.identifier = identifier;
  icmp.sequence = sequence;
  const std::vector<std::uint8_t> padding(payload_bytes, 0xA5);
  Ipv4Packet pkt = make_icmp_packet(address_, dst, icmp, padding, next_ip_id_++, ttl);
  transmit(pkt);
}

void Host::transmit(const Ipv4Packet& packet) {
  ++stats_.ip_packets_sent;
  if (tap_) tap_(packet, TapDirection::kOutbound, loop_.now());
  if (send_) send_(packet);
}

void Host::handle_packet(const Ipv4Packet& packet, int /*ingress_iface*/) {
  if (!local_address(packet.header.dst)) return;  // not promiscuous for foreign traffic
  if (tap_) tap_(packet, TapDirection::kInbound, loop_.now());
  if (probe_ != nullptr)
    probe_->fold(loop_.now(), packet.header.protocol, packet.header.identification,
                 packet.total_length());

  auto whole = reassembler_.offer(packet, loop_.now());
  reassembler_.expire(loop_.now());
  if (!whole) return;
  deliver_datagram(*whole);
}

void Host::tcp_send(const TcpHeader& segment, Ipv4Address dst,
                    std::span<const std::uint8_t> payload, std::uint8_t ttl) {
  const Ipv4Packet pkt = make_tcp_packet(Endpoint{address_, segment.src_port},
                                         Endpoint{dst, segment.dst_port}, segment,
                                         payload, next_ip_id_++, ttl);
  transmit(pkt);
}

void Host::deliver_datagram(const Ipv4Packet& whole) {
  switch (whole.header.protocol) {
    case kIpProtoUdp: {
      ByteReader r(whole.payload);
      auto udp = UdpHeader::decode(r);
      if (!udp) return;
      const std::size_t data_len = udp->length - kUdpHeaderSize;
      auto data = r.bytes(std::min<std::size_t>(data_len, r.remaining()));
      auto it = udp_ports_.find(udp->dst_port);
      if (it == udp_ports_.end()) {
        ++stats_.udp_no_listener;
        return;
      }
      ++stats_.udp_datagrams_received;
      it->second(data, Endpoint{whole.header.src, udp->src_port}, loop_.now());
      break;
    }
    case kIpProtoTcp: {
      if (!tcp_handler_) return;
      ByteReader r(whole.payload);
      auto tcp = TcpHeader::decode(r);
      if (!tcp) return;
      auto data = r.bytes(r.remaining());
      tcp_handler_(*tcp, whole.header.src, data, loop_.now());
      break;
    }
    case kIpProtoIcmp: {
      ByteReader r(whole.payload);
      auto icmp = IcmpHeader::decode(r);
      if (!icmp) return;
      ++stats_.icmp_received;
      if (icmp->type == IcmpType::kEchoRequest) {
        IcmpHeader reply;
        reply.type = IcmpType::kEchoReply;
        reply.identifier = icmp->identifier;
        reply.sequence = icmp->sequence;
        auto echo_payload = r.bytes(r.remaining());
        Ipv4Packet out =
            make_icmp_packet(address_, whole.header.src, reply, echo_payload, next_ip_id_++);
        transmit(out);
        return;
      }
      if (icmp_handler_) {
        auto rest = r.bytes(r.remaining());
        icmp_handler_(*icmp, whole.header, rest, loop_.now());
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace streamlab
