// Fitted traffic model — Section IV of the paper.
//
// "Simulations based on data from this paper can be an effective means of
// exploring network impact ... we would select an RTT based on Figure 1,
// an encoding rate and clip length from Table 1, packet sizes from
// distributions based on Figures 6 and 7, intervals based on Figures 8 and
// 9, fragmentation rates based on Figure 5, and RealPlayer startup rates
// based on Figure 11."
//
// FlowModel::fit() extracts exactly those empirical distributions from a
// completed study, so synthetic flows inherit the measured behaviour rather
// than hand-tuned constants.
#pragma once

#include "core/study.hpp"
#include "util/rng.hpp"

namespace streamlab {

/// Per-player fitted distributions.
struct PlayerModel {
  PlayerKind player = PlayerKind::kRealPlayer;
  /// Normalised packet size distribution (Figure 7): multiply by a mean
  /// packet size implied by the encoding rate.
  EmpiricalSampler normalized_sizes{std::vector<double>{}};
  /// Normalised interarrival distribution (Figure 9).
  EmpiricalSampler normalized_intervals{std::vector<double>{}};
  /// Mean wire packet size per clip, as (encoding Kbps, mean bytes) points
  /// interpolated linearly at generation time.
  std::vector<std::pair<double, double>> mean_size_by_rate;
  /// Mean interarrival per clip, (encoding Kbps, seconds).
  std::vector<std::pair<double, double>> mean_interval_by_rate;
  /// Fragment fraction per clip (Figure 5), (encoding Kbps, fraction).
  std::vector<std::pair<double, double>> fragment_fraction_by_rate;
  /// Buffering ratio per clip (Figure 11; ~1 for MediaPlayer).
  std::vector<std::pair<double, double>> buffering_ratio_by_rate;

  double mean_size_at(double kbps) const;
  double mean_interval_at(double kbps) const;
  double fragment_fraction_at(double kbps) const;
  double buffering_ratio_at(double kbps) const;
};

/// The complete fitted model: both players plus the RTT distribution.
struct FlowModel {
  EmpiricalSampler rtt_ms{std::vector<double>{}};  ///< Figure 1
  PlayerModel real;
  PlayerModel media;

  const PlayerModel& for_player(PlayerKind kind) const {
    return kind == PlayerKind::kRealPlayer ? real : media;
  }

  static FlowModel fit(const StudyResults& study);
};

}  // namespace streamlab
