// Synthetic streaming-flow generation (Section IV).
//
// Given a fitted FlowModel, generates a packet-level trace for a simulated
// RealPlayer or MediaPlayer session without running the full network
// simulation — the lightweight generator the paper proposes for ns-style
// simulators.
#pragma once

#include <vector>

#include "media/catalog.hpp"
#include "tracegen/model.hpp"

namespace streamlab {

struct SyntheticPacket {
  double time_s = 0.0;
  std::uint32_t bytes = 0;
  bool fragment = false;  ///< trailing IP fragment (MediaPlayer high rates)
};

struct SyntheticFlow {
  ClipInfo clip;
  double rtt_ms = 0.0;  ///< path RTT drawn from the Figure 1 distribution
  std::vector<SyntheticPacket> packets;

  std::uint64_t total_bytes() const;
  double duration_s() const;
  double mean_rate_kbps() const;
  double fragment_fraction() const;
  std::vector<double> sizes() const;
  std::vector<double> interarrivals() const;  ///< group-leading packets only
};

class SyntheticFlowGenerator {
 public:
  SyntheticFlowGenerator(const FlowModel& model, std::uint64_t seed);

  /// Generates one flow for the given catalog clip.
  SyntheticFlow generate(const ClipInfo& clip);

 private:
  const FlowModel& model_;
  Rng rng_;
};

/// Validation of a synthetic flow against the measured distributions it was
/// fitted from: Kolmogorov-Smirnov distances on the normalised size and
/// interarrival distributions (smaller is better; < ~0.15 is a close match).
struct SyntheticValidation {
  double size_ks = 1.0;
  double interval_ks = 1.0;
  double rate_relative_error = 1.0;  ///< |mean rate - encoding rate| / encoding rate
};
SyntheticValidation validate_against_model(const SyntheticFlow& flow,
                                           const FlowModel& model);

}  // namespace streamlab
