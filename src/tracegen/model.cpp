#include "tracegen/model.hpp"

#include <algorithm>

#include "core/figures.hpp"

namespace streamlab {
namespace {

/// Piecewise-linear interpolation over (x, y) points; clamps outside the
/// observed range. Points need not be pre-sorted.
double interpolate(std::vector<std::pair<double, double>> points, double x) {
  if (points.empty()) return 0.0;
  std::sort(points.begin(), points.end());
  if (x <= points.front().first) return points.front().second;
  if (x >= points.back().first) return points.back().second;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (x <= points[i].first) {
      const auto& [x0, y0] = points[i - 1];
      const auto& [x1, y1] = points[i];
      const double t = x1 == x0 ? 0.0 : (x - x0) / (x1 - x0);
      return y0 + t * (y1 - y0);
    }
  }
  return points.back().second;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

PlayerModel fit_player(const StudyResults& study, PlayerKind kind) {
  PlayerModel m;
  m.player = kind;
  m.normalized_sizes = EmpiricalSampler(figures::normalized_packet_sizes(study, kind));
  m.normalized_intervals =
      EmpiricalSampler(figures::normalized_interarrivals(study, kind));

  for (const auto* clip : study.clips_for(kind)) {
    const double kbps = clip->clip.encoded_rate.to_kbps();
    m.mean_size_by_rate.emplace_back(kbps, mean_of(clip->flow.packet_sizes()));
    m.mean_interval_by_rate.emplace_back(kbps,
                                         mean_of(figures::clip_interarrivals(*clip)));
    m.fragment_fraction_by_rate.emplace_back(kbps, clip->flow.fragment_fraction());
    m.buffering_ratio_by_rate.emplace_back(kbps, clip->buffering.ratio());
  }
  return m;
}

}  // namespace

double PlayerModel::mean_size_at(double kbps) const {
  return interpolate(mean_size_by_rate, kbps);
}
double PlayerModel::mean_interval_at(double kbps) const {
  return interpolate(mean_interval_by_rate, kbps);
}
double PlayerModel::fragment_fraction_at(double kbps) const {
  return interpolate(fragment_fraction_by_rate, kbps);
}
double PlayerModel::buffering_ratio_at(double kbps) const {
  return interpolate(buffering_ratio_by_rate, kbps);
}

FlowModel FlowModel::fit(const StudyResults& study) {
  FlowModel model;
  model.rtt_ms = EmpiricalSampler(figures::rtt_samples_ms(study));
  model.real = fit_player(study, PlayerKind::kRealPlayer);
  model.media = fit_player(study, PlayerKind::kMediaPlayer);
  return model;
}

}  // namespace streamlab
