#include "tracegen/generator.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/stats.hpp"
#include "net/headers.hpp"

namespace streamlab {

std::uint64_t SyntheticFlow::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : packets) total += p.bytes;
  return total;
}

double SyntheticFlow::duration_s() const {
  if (packets.size() < 2) return 0.0;
  return packets.back().time_s - packets.front().time_s;
}

double SyntheticFlow::mean_rate_kbps() const {
  const double d = duration_s();
  return d <= 0.0 ? 0.0 : static_cast<double>(total_bytes()) * 8.0 / d / 1000.0;
}

double SyntheticFlow::fragment_fraction() const {
  if (packets.empty()) return 0.0;
  const auto frags = std::count_if(packets.begin(), packets.end(),
                                   [](const SyntheticPacket& p) { return p.fragment; });
  return static_cast<double>(frags) / static_cast<double>(packets.size());
}

std::vector<double> SyntheticFlow::sizes() const {
  std::vector<double> out;
  out.reserve(packets.size());
  for (const auto& p : packets) out.push_back(static_cast<double>(p.bytes));
  return out;
}

std::vector<double> SyntheticFlow::interarrivals() const {
  std::vector<double> out;
  double prev = -1.0;
  for (const auto& p : packets) {
    if (p.fragment) continue;
    if (prev >= 0.0) out.push_back(p.time_s - prev);
    prev = p.time_s;
  }
  return out;
}

SyntheticFlowGenerator::SyntheticFlowGenerator(const FlowModel& model, std::uint64_t seed)
    : model_(model), rng_(seed) {}

SyntheticFlow SyntheticFlowGenerator::generate(const ClipInfo& clip) {
  SyntheticFlow flow;
  flow.clip = clip;
  flow.rtt_ms = model_.rtt_ms.sample(rng_);

  const PlayerModel& pm = model_.for_player(clip.player);
  const double kbps = clip.encoded_rate.to_kbps();
  const double mean_size = std::max(64.0, pm.mean_size_at(kbps));
  const double frag_fraction = pm.fragment_fraction_at(kbps);
  const double buffering_ratio = std::max(1.0, pm.buffering_ratio_at(kbps));

  // Startup burst window per Section IV: 20 s for low-rate clips to 40 s for
  // high-rate clips, only meaningful when the fitted ratio exceeds 1.
  const double burst_secs = kbps <= 100.0 ? 20.0 : 40.0;
  const bool has_burst = buffering_ratio > 1.1;

  // Fragments per datagram implied by the fragment fraction f: a group of n
  // packets has (n-1)/n fragments, so n = 1/(1-f).
  const int group_size =
      frag_fraction >= 0.01
          ? std::max(1, static_cast<int>(std::lround(1.0 / (1.0 - frag_fraction))))
          : 1;

  const double media_budget_bytes =
      static_cast<double>(clip.encoded_rate.bytes_in(clip.length));
  double sent = 0.0;
  double t = flow.rtt_ms / 1000.0 / 2.0;  // first packet lands after one-way delay

  while (sent < media_budget_bytes) {
    const double size_mult = pm.normalized_sizes.empty()
                                 ? 1.0
                                 : pm.normalized_sizes.sample(rng_);
    const double group_bytes =
        std::max(64.0, mean_size * std::max(0.1, size_mult)) *
        static_cast<double>(group_size);

    if (group_size == 1) {
      flow.packets.push_back(
          {t, static_cast<std::uint32_t>(group_bytes + 0.5), false});
    } else {
      // Leading packet + full-MTU fragments + tail, mirroring the wire
      // pattern of Figure 4.
      double remaining = group_bytes;
      bool first = true;
      while (remaining > 0.0) {
        const double piece =
            std::min(remaining, static_cast<double>(kDefaultMtu + kEthernetHeaderSize));
        flow.packets.push_back({t, static_cast<std::uint32_t>(piece + 0.5), !first});
        remaining -= piece;
        first = false;
      }
    }
    sent += group_bytes;

    const double interval_mult = pm.normalized_intervals.empty()
                                     ? 1.0
                                     : pm.normalized_intervals.sample(rng_);
    // Steady pacing carries this group's bytes at the clip's playout rate
    // (Section IV: packets at intervals from the Fig 8-9 distributions,
    // around the encoding rate); the fitted distribution supplies the shape.
    const double steady_interval =
        group_bytes * 8.0 / (kbps * 1000.0);
    double interval = steady_interval * std::max(0.01, interval_mult);
    // During the startup burst the flow runs at buffering_ratio x the steady
    // rate, i.e. intervals shrink by that factor (Figure 11 / Section IV).
    if (has_burst && t < burst_secs) interval /= buffering_ratio;
    t += interval;
  }
  return flow;
}

SyntheticValidation validate_against_model(const SyntheticFlow& flow,
                                           const FlowModel& model) {
  SyntheticValidation v;
  const PlayerModel& pm = model.for_player(flow.clip.player);

  const auto synth_sizes = normalize_by_mean(flow.sizes());
  std::vector<double> model_sizes;
  for (int i = 0; i <= 200; ++i)
    model_sizes.push_back(pm.normalized_sizes.quantile(i / 200.0));
  // The synthetic trace re-expands sizes into fragment groups, so compare
  // group-normalised distributions for players that never fragment and
  // accept coarser agreement otherwise.
  v.size_ks = ks_distance(synth_sizes, model_sizes);

  const auto synth_intervals = normalize_by_mean(flow.interarrivals());
  std::vector<double> model_intervals;
  for (int i = 0; i <= 200; ++i)
    model_intervals.push_back(pm.normalized_intervals.quantile(i / 200.0));
  v.interval_ks = ks_distance(synth_intervals, model_intervals);

  const double target = flow.clip.encoded_rate.to_kbps();
  v.rate_relative_error =
      target <= 0.0 ? 1.0 : std::abs(flow.mean_rate_kbps() - target) / target;
  return v;
}

}  // namespace streamlab
