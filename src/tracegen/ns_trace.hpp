// ns-style trace output: the paper suggests using its results "to produce
// more realistic video traffic for popular simulators, such as NS". This
// writer emits the classic ns-2 trace line format for packet arrivals:
//
//   r <time> <from> <to> <type> <size> --- <flow-id> ...
//
// plus a simple loader so traces round-trip.
#pragma once

#include <iosfwd>
#include <string>

#include "tracegen/generator.hpp"
#include "util/expected.hpp"

namespace streamlab {

/// Writes a synthetic flow as ns-2 "r" (receive) events on flow `flow_id`.
bool write_ns_trace(std::ostream& out, const SyntheticFlow& flow, int flow_id = 1);
bool write_ns_trace_file(const std::string& path, const SyntheticFlow& flow,
                         int flow_id = 1);

/// Reads back packets from an ns trace produced by write_ns_trace.
Expected<std::vector<SyntheticPacket>> read_ns_trace(std::istream& in);

}  // namespace streamlab
