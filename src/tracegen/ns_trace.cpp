#include "tracegen/ns_trace.hpp"

#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace streamlab {

bool write_ns_trace(std::ostream& out, const SyntheticFlow& flow, int flow_id) {
  for (const auto& p : flow.packets) {
    // r <time> <from> <to> <type> <size> --- <fid> <src> <dst> <seq> <uid>
    out << "r " << fmt_double(p.time_s, 6) << " 1 0 " << (p.fragment ? "frag" : "udp")
        << " " << p.bytes << " --- " << flow_id << " 1.0 0.0 0 0\n";
  }
  return static_cast<bool>(out);
}

bool write_ns_trace_file(const std::string& path, const SyntheticFlow& flow, int flow_id) {
  std::ofstream out(path);
  return out && write_ns_trace(out, flow, flow_id);
}

Expected<std::vector<SyntheticPacket>> read_ns_trace(std::istream& in) {
  std::vector<SyntheticPacket> packets;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string event, type;
    double time = 0.0;
    int from = 0, to = 0;
    std::uint32_t size = 0;
    if (!(ls >> event >> time >> from >> to >> type >> size))
      return Unexpected("malformed ns trace line " + std::to_string(line_no));
    if (event != "r") continue;  // only receive events carry packets here
    packets.push_back({time, size, type == "frag"});
  }
  return packets;
}

}  // namespace streamlab
