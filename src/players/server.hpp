// Streaming server models.
//
// WmServer reproduces the wire behaviour the paper attributes to Windows
// Media servers: one large application frame per fixed interval, paced at
// exactly the encoding rate from the first packet to the last (buffering at
// playout rate, Section 3.F), with datagrams at high rates exceeding the
// MTU so the host IP layer fragments them (Sections 3.C-3.D).
//
// RmServer reproduces RealServer behaviour: sub-MTU packets of varied size,
// varied interarrival, and a startup burst at buffering_ratio x the playout
// rate for burst_duration seconds (Sections 3.D-3.F).
#pragma once

#include <cstdint>
#include <vector>

#include <memory>

#include "media/encoder.hpp"
#include "players/behavior.hpp"
#include "players/multipath.hpp"
#include "players/protocol.hpp"
#include "players/repair.hpp"
#include "players/scaling.hpp"
#include "sim/host.hpp"
#include "util/rng.hpp"

namespace streamlab {

class StreamServer {
 public:
  struct SendEvent {
    SimTime time;
    std::uint32_t seq = 0;
    std::uint64_t media_offset = 0;
    std::size_t media_len = 0;
    bool buffering_phase = false;
  };

  /// Binds the control/data port on `host` and waits for a PLAY request.
  StreamServer(Host& host, EncodedClip clip, std::uint16_t port);
  virtual ~StreamServer();
  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  const EncodedClip& clip() const { return clip_; }
  std::uint16_t port() const { return port_; }
  bool started() const { return started_; }
  bool finished() const { return finished_; }
  /// Lifecycle phase as reported to the invariant auditor
  /// (kIdle -> kStreaming -> kFinished).
  audit::SessionPhase session_phase() const { return audit_phase_; }
  /// PLAY retransmissions re-acknowledged after the session started.
  std::uint64_t duplicate_play_requests() const { return duplicate_play_requests_; }
  const std::vector<SendEvent>& send_log() const { return send_log_; }
  /// Wall-clock streaming duration (first send to last send).
  Duration streaming_duration() const;

  /// Enables media scaling (Section VI): the server thins frames when the
  /// client's receiver reports show loss. Call before the PLAY arrives.
  void enable_scaling(MediaScalingPolicy policy);
  bool scaling_enabled() const { return scaling_ != nullptr; }
  /// Current keep fraction (1.0 when scaling is off or at full quality).
  double scaling_keep_fraction() const;
  std::size_t scaling_level_changes() const;
  std::uint32_t frames_thinned() const;

  /// Enables the loss repair layer (FEC parity emission and/or NACK
  /// retransmission service). Call before the PLAY arrives.
  void enable_repair(RepairLayerConfig config);
  bool repair_enabled() const { return repair_ != nullptr; }

  /// Enables multipath striping: data packets are dispatched across the
  /// primary path (subflow 0) and the detour subflow (subflow 1, server
  /// alias -> client alias) by the health-driven weighted scheduler. Call
  /// before the PLAY arrives; `config` must carry the alias addresses from
  /// Network::enable_multipath(). Parity and retransmissions stay on the
  /// primary path in canonical (non-multipath) form, so the repair layer's
  /// sequence spaces are untouched by striping.
  void enable_multipath(MultipathConfig config);
  bool multipath_enabled() const { return multipath_ != nullptr; }

  // --- Multipath statistics (zero when multipath is off) ---
  /// Healthy<->draining transitions across all subflows.
  std::uint64_t path_switches() const {
    return multipath_ ? multipath_->scheduler.path_switches() : 0;
  }
  std::uint64_t subflow_packets_sent(int id) const {
    return multipath_ ? multipath_->scheduler.stats(id).packets_sent : 0;
  }
  std::uint64_t subflow_media_bytes_sent(int id) const {
    return multipath_ ? multipath_->scheduler.stats(id).media_bytes_sent : 0;
  }
  /// True while every subflow is draining (degraded to primary-only).
  bool multipath_degraded() const {
    return multipath_ != nullptr && multipath_->scheduler.all_draining();
  }
  const SubflowScheduler* multipath_scheduler() const {
    return multipath_ ? &multipath_->scheduler : nullptr;
  }

  // --- Repair-side statistics (zero when repair is off) ---
  std::uint64_t parity_packets_sent() const { return repair_ ? repair_->parity_packets : 0; }
  std::uint64_t parity_bytes_sent() const { return repair_ ? repair_->parity_bytes : 0; }
  std::uint64_t nacks_received() const { return repair_ ? repair_->nacks_received : 0; }
  std::uint64_t retransmissions_sent() const { return repair_ ? repair_->retx_packets : 0; }
  std::uint64_t retx_bytes_sent() const { return repair_ ? repair_->retx_bytes : 0; }
  /// Retransmissions suppressed because the pacer was out of tokens.
  std::uint64_t retx_suppressed_pacer() const { return repair_ ? repair_->retx_suppressed : 0; }
  /// NACKed sequences that had already left the retransmission ring.
  std::uint64_t retx_unavailable() const { return repair_ ? repair_->retx_unavailable : 0; }

 protected:
  /// Invoked when a PLAY request arrives; implementations start their send
  /// schedule here.
  virtual void on_play() = 0;

  /// Sends the next `media_len` bytes of the clip (clamped to what remains),
  /// tagging the packet with seq/offset/flags. Returns the bytes actually
  /// sent; 0 means the clip is exhausted (and marks the stream finished).
  /// When scaling is enabled, bytes come from the thinned-frame cursor and
  /// datagrams never span a thinning gap.
  std::size_t send_media(std::size_t media_len, bool buffering_phase);

  std::uint64_t remaining_bytes() const {
    return clip_.total_bytes() - next_offset_;
  }

  Host& host_;
  EncodedClip clip_;
  std::uint16_t port_;
  Endpoint client_;
  bool started_ = false;
  bool finished_ = false;

 private:
  void handle_control(std::span<const std::uint8_t> payload, Endpoint from);

  void audit_transition(audit::SessionPhase to);
  /// Marks the stream finished exactly once, reporting the state transition
  /// to an attached auditor.
  void finish_stream();

  /// Honors a PLAY request's resume offset: streaming starts (and seq
  /// numbering continues from 0) at this media byte instead of the top —
  /// how a mirror continues a failed-over session.
  void resume_from(std::uint64_t offset);

  std::size_t send_plain(std::size_t media_len, bool buffering_phase);
  std::size_t send_thinned(std::size_t media_len, bool buffering_phase);
  void emit(std::uint64_t offset, std::size_t media_len, std::uint8_t flags,
            bool buffering_phase);

  void on_scaling_switch();

  audit::SessionPhase audit_phase_ = audit::SessionPhase::kIdle;
  std::uint32_t next_seq_ = 0;
  std::uint64_t next_offset_ = 0;
  std::uint64_t duplicate_play_requests_ = 0;
  std::vector<SendEvent> send_log_;

  struct ScalingState {
    ScalingController controller;
    ThinnedMediaCursor cursor;
  };
  std::unique_ptr<ScalingState> scaling_;

  /// Loss-repair state, allocated by enable_repair.
  struct RepairState {
    RepairLayerConfig config;
    FecBlockEncoder encoder;
    RetransmitBuffer buffer;
    TokenBucketPacer pacer;
    std::uint64_t parity_packets = 0;
    std::uint64_t parity_bytes = 0;
    std::uint64_t nacks_received = 0;
    std::uint64_t retx_packets = 0;
    std::uint64_t retx_bytes = 0;
    std::uint64_t retx_suppressed = 0;
    std::uint64_t retx_unavailable = 0;
  };
  std::unique_ptr<RepairState> repair_;

  /// Multipath dispatch state, allocated by enable_multipath.
  struct MultipathState {
    explicit MultipathState(const MultipathConfig& c) : config(c), scheduler(c) {}
    MultipathConfig config;
    SubflowScheduler scheduler;
    EventHandle strike_timer;
  };
  std::unique_ptr<MultipathState> multipath_;
  bool multipath_icmp_installed_ = false;

  void send_parity(const ParityOut& parity);
  void handle_nack(const ControlMessage& msg);
  void handle_path_report(const ControlMessage& msg);
  void on_multipath_tick();
  /// Destination endpoint of the detour subflow (client alias, data port).
  Endpoint subflow1_destination() const {
    return Endpoint{multipath_->config.client_alias, client_.port};
  }

  /// Scaling-switch instrumentation, allocated only when an observability
  /// context is attached to the loop (see obs/obs.hpp).
  struct ObsState {
    obs::Obs* obs = nullptr;
    obs::Counter switches;
    obs::Counter parity_sent;
    obs::Counter retx_sent;
    obs::Counter nacks_received;
    std::uint16_t track = 0;
    std::uint16_t switch_name = 0;
    std::uint16_t keep_name = 0;
  };
  std::unique_ptr<ObsState> obs_;
};

/// MediaPlayer server model (CBR, large frames, fragmentation at high rates).
class WmServer : public StreamServer {
 public:
  WmServer(Host& host, EncodedClip clip, WmBehavior behavior = {},
           std::uint16_t port = kMediaServerPort);

 protected:
  void on_play() override;

 private:
  void send_next();

  WmBehavior behavior_;
  std::size_t datagram_media_ = 0;
  Duration interval_;
};

/// RealPlayer server model (varied packets, startup burst, no fragmentation).
class RmServer : public StreamServer {
 public:
  RmServer(Host& host, EncodedClip clip, RmBehavior behavior = {},
           std::uint16_t port = kRealServerPort, std::uint64_t seed = 0x524D);

 protected:
  void on_play() override;

 private:
  void send_next();

  RmBehavior behavior_;
  Rng rng_;
  SimTime burst_end_;
  std::size_t mean_media_ = 0;
};

}  // namespace streamlab
