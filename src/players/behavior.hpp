// Behavioural parameter sets for the two player models.
//
// Every constant here is calibrated against a quantitative claim in the
// paper; the comment on each field cites the figure/section it reproduces.
// Tests in tests/players assert the derived quantities (fragment fractions,
// buffering ratios, burst durations) against the paper's reported values.
#pragma once

#include <cstddef>

#include "media/clip.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace streamlab {

/// Windows MediaPlayer server/client behaviour.
struct WmBehavior {
  /// The server emits one application frame per this interval at high rates
  /// (Figure 12: the OS receives packet groups every 100 ms).
  Duration frame_interval = Duration::millis(100);

  /// Low-rate clips use a minimum datagram payload instead of shrinking the
  /// interval's worth of bytes below it, giving the 800-1000 byte packets of
  /// Figure 6 and the ~0.14 s interarrivals of Figure 8.
  std::size_t min_media_per_datagram = 850;

  /// Client delay buffer filled at playout rate before rendering begins
  /// (Section 3.F: MediaPlayer "always buffers at the same rate as it plays
  /// back", so the buffer is simply a playout offset).
  Duration preroll = Duration::seconds(5);

  /// Application-layer interleaving: the player engine releases received
  /// packets to the application in batches once per second (Figure 12:
  /// "groups of 10, once per second").
  Duration app_batch_interval = Duration::seconds(1);

  /// Media bytes the server packs into one datagram at this encoding rate.
  std::size_t media_per_datagram(BitRate rate) const;
  /// Constant send interval preserving the encoding rate (CBR pacing).
  Duration send_interval(BitRate rate, std::size_t media_len) const;
};

/// RealPlayer server/client behaviour.
struct RmBehavior {
  /// Buffering ratio at/below the 56 Kbps tier (Figure 11: "as high as 3").
  double ratio_at_low = 3.0;
  /// Rate the ratio decays with encoding rate: ratio = ratio_at_low *
  /// (56 Kbps / rate)^exponent, clamped to [floor, ratio_at_low]. At the
  /// 637 Kbps clip this lands near 1 (Figure 11).
  double ratio_exponent = 0.45;
  double ratio_floor = 1.05;

  /// Startup burst duration: ~20 s for low-rate clips to ~40 s for high-rate
  /// clips (Section IV), interpolated in log-rate between the tiers.
  Duration burst_at_low = Duration::seconds(20);
  Duration burst_at_high = Duration::seconds(40);
  /// The server stops bursting once its delay-buffer target is reached; for
  /// clips shorter than the nominal burst this caps the burst at a fraction
  /// of the clip, so short clips still show a distinct steady phase
  /// (Figure 11 plots ratios near 3 even for the 39-60 s clips).
  double burst_max_fraction_of_clip = 0.25;

  /// Client preroll before rendering begins.
  Duration preroll = Duration::seconds(4);

  /// Packet sizes: drawn per-packet as mean x a right-skewed multiplier
  /// (lognormal with mean 1 and this CV, clamped to the spread range), so
  /// sizes cover roughly 0.6-1.8x the mean with more mass below 1 —
  /// Figure 7's RealPlayer shape — and never exceed max_payload, so no
  /// RealPlayer packet ever fragments (Figures 4-5).
  double size_cv = 0.32;
  double size_spread_min = 0.60;
  double size_spread_max = 1.80;
  std::size_t max_media_per_datagram = 1400;
  std::size_t min_media_per_datagram = 128;

  /// Interarrival noise: multiplicative lognormal with this coefficient of
  /// variation (Figures 8-9: RealPlayer interarrivals spread widely).
  double interarrival_cv = 0.45;

  double buffering_ratio(BitRate rate) const;
  Duration burst_duration(BitRate rate) const;
  /// Burst duration after the short-clip cap.
  Duration burst_duration_for_clip(BitRate rate, Duration clip_length) const;
  /// Mean media bytes per datagram at this rate.
  std::size_t mean_media_per_datagram(BitRate rate) const;
};

}  // namespace streamlab
