#include "players/server.hpp"

#include <algorithm>
#include <string>

#include "net/headers.hpp"
#include "util/bytes.hpp"

namespace streamlab {

StreamServer::StreamServer(Host& host, EncodedClip clip, std::uint16_t port)
    : host_(host), clip_(std::move(clip)), port_(port) {
  host_.udp_bind(port_, [this](std::span<const std::uint8_t> payload, Endpoint from,
                               SimTime) { handle_control(payload, from); });
  if constexpr (obs::kObsCompiledIn) {
    if (obs::Obs* obs = host_.loop().observer(); obs != nullptr) {
      obs_ = std::make_unique<ObsState>();
      obs_->obs = obs;
      const std::string tag = port_ == kRealServerPort  ? "rm"
                              : port_ == kMediaServerPort ? "wm"
                                                          : std::to_string(port_);
      obs_->switches = obs->registry().counter("server." + tag + ".scaling_switches");
      obs_->parity_sent = obs->registry().counter("server." + tag + ".parity_sent");
      obs_->retx_sent = obs->registry().counter("server." + tag + ".retx_sent");
      obs_->nacks_received = obs->registry().counter("server." + tag + ".nacks_received");
      obs::Tracer& tracer = obs->tracer();
      obs_->track = tracer.intern("server." + tag);
      obs_->switch_name = tracer.intern("scaling-switch");
      obs_->keep_name = tracer.intern("server." + tag + ".keep_fraction");
    }
  }
}

StreamServer::~StreamServer() {
  if (multipath_) multipath_->strike_timer.cancel();
  if (multipath_icmp_installed_) host_.set_icmp_handler({});
  host_.udp_unbind(port_);
}

void StreamServer::enable_scaling(MediaScalingPolicy policy) {
  policy.enabled = true;
  scaling_ = std::make_unique<ScalingState>(
      ScalingState{ScalingController(std::move(policy)), ThinnedMediaCursor(clip_)});
}

double StreamServer::scaling_keep_fraction() const {
  return scaling_ ? scaling_->controller.keep_fraction() : 1.0;
}

std::size_t StreamServer::scaling_level_changes() const {
  return scaling_ ? scaling_->controller.level_changes() : 0;
}

std::uint32_t StreamServer::frames_thinned() const {
  return scaling_ ? scaling_->cursor.frames_skipped() : 0;
}

void StreamServer::enable_repair(RepairLayerConfig config) {
  repair_ = std::make_unique<RepairState>(RepairState{
      config,
      FecBlockEncoder(config.effective_k(), config.effective_stride()),
      RetransmitBuffer(config.retx_buffer_packets),
      TokenBucketPacer(clip_.info().encoded_rate.scaled(config.pacer_rate_fraction),
                       config.pacer_burst_bytes)});
}

void StreamServer::enable_multipath(MultipathConfig config) {
  config.enabled = true;
  multipath_ = std::make_unique<MultipathState>(config);
  // Destination Unreachable quoting the detour subflow's addresses is the
  // fast-fail signal for that path: drain it immediately, ahead of the
  // report-silence strikes.
  multipath_icmp_installed_ = true;
  host_.set_icmp_handler([this](const IcmpHeader& icmp, const Ipv4Header&,
                                std::span<const std::uint8_t> payload, SimTime now) {
    if (icmp.type != IcmpType::kDestinationUnreachable || !multipath_) return;
    ByteReader reader(payload);
    const auto quoted = Ipv4Header::decode(reader);
    if (!quoted) return;
    if (quoted->dst == multipath_->config.client_alias ||
        quoted->src == multipath_->config.server_alias)
      multipath_->scheduler.on_unreachable(1, now);
  });
}

void StreamServer::on_multipath_tick() {
  if (finished_ || !started_) return;
  multipath_->scheduler.on_strike_tick(host_.loop().now());
  multipath_->strike_timer =
      host_.loop().schedule_in(multipath_->config.report_interval,
                               [this] { on_multipath_tick(); },
                               obs::EventCategory::kControl);
}

void StreamServer::handle_path_report(const ControlMessage& msg) {
  const int id = static_cast<int>(msg.value);
  if (id < 0 || id >= multipath_->scheduler.subflow_count()) return;
  multipath_->scheduler.on_report(id, static_cast<std::uint32_t>(msg.offset >> 32),
                                  static_cast<std::uint32_t>(msg.offset),
                                  host_.loop().now());
}

void StreamServer::handle_control(std::span<const std::uint8_t> payload, Endpoint from) {
  auto msg = ControlMessage::decode(payload);
  if (!msg) return;
  switch (msg->type) {
    case ControlType::kPlayRequest: {
      if (!msg->clip_id.empty() && msg->clip_id != clip_.info().id()) return;
      if (started_) {
        // Duplicate PLAY (a client retransmission whose predecessor — or
        // whose PLAY-OK — was lost). Re-acknowledge idempotently so client
        // retries are always safe; never restart the send schedule.
        if (from == client_) {
          ++duplicate_play_requests_;
          ControlMessage ok{ControlType::kPlayOk, clip_.info().id()};
          const auto ok_bytes = ok.encode();
          host_.udp_send(port_, client_, ok_bytes);
        }
        return;  // single-session server: other endpoints are ignored
      }
      started_ = true;
      audit_transition(audit::SessionPhase::kStreaming);
      client_ = from;
      if (msg->offset > 0) resume_from(msg->offset);
      ControlMessage ok{ControlType::kPlayOk, clip_.info().id()};
      const auto ok_bytes = ok.encode();
      host_.udp_send(port_, client_, ok_bytes);
      if (multipath_) on_multipath_tick();  // arm the report-silence strikes
      on_play();
      break;
    }
    case ControlType::kReceiverReport:
      if (scaling_ && started_ && from == client_) {
        const std::size_t changes_before = scaling_->controller.level_changes();
        scaling_->controller.on_report(static_cast<double>(msg->value) / 1000.0,
                                       host_.loop().now());
        if (obs_ && scaling_->controller.level_changes() != changes_before)
          on_scaling_switch();
      }
      break;
    case ControlType::kNack:
      if (repair_ && repair_->config.nack && started_ && from == client_)
        handle_nack(*msg);
      break;
    case ControlType::kPathReport:
      // Subflow 1 reports arrive from the client's alias address (they ride
      // the path they describe), so the source gate admits both identities.
      if (multipath_ && started_ && from.port == client_.port &&
          (from.ip == client_.ip || from.ip == multipath_->config.client_alias))
        handle_path_report(*msg);
      break;
    case ControlType::kTeardown:
      finish_stream();
      break;
    default:
      break;
  }
}

void StreamServer::handle_nack(const ControlMessage& msg) {
  ++repair_->nacks_received;
  if (obs_) obs_->nacks_received.add();
  const SimTime now = host_.loop().now();
  for (const std::uint32_t seq : nack_requested_seqs(msg)) {
    const auto entry = repair_->buffer.lookup(seq);
    if (!entry) {
      ++repair_->retx_unavailable;
      continue;
    }
    const std::size_t wire_bytes = kDataHeaderSize + entry->media_len;
    if (!repair_->pacer.try_consume(now, wire_bytes)) {
      // Out of tokens: drop this retransmission; the client's retry budget
      // re-requests it after another RTT-scaled delay.
      ++repair_->retx_suppressed;
      continue;
    }
    DataHeader header;
    header.seq = entry->seq;
    header.media_offset = entry->media_offset;
    header.flags = entry->flags | kFlagRetransmit;
    const auto packet = DataHeader::make_packet(header, entry->media_len);
    host_.udp_send(port_, client_, packet);
    ++repair_->retx_packets;
    repair_->retx_bytes += packet.size();
    if (obs_) obs_->retx_sent.add();
  }
}

void StreamServer::send_parity(const ParityOut& parity) {
  const auto packet = ParityHeader::make_packet(parity.header, parity.pad_len);
  host_.udp_send(port_, client_, packet);
  ++repair_->parity_packets;
  repair_->parity_bytes += packet.size();
  if (obs_) obs_->parity_sent.add();
}

void StreamServer::resume_from(std::uint64_t offset) {
  offset = std::min<std::uint64_t>(offset, clip_.total_bytes());
  next_offset_ = offset;
  if (scaling_) scaling_->cursor.seek(offset);
}

void StreamServer::emit(std::uint64_t offset, std::size_t media_len, std::uint8_t flags,
                        bool buffering_phase) {
  DataHeader header;
  header.seq = next_seq_++;
  header.media_offset = offset;
  header.flags = flags | (buffering_phase ? kFlagBufferingPhase : 0);
  if (multipath_) {
    // Striping: the health-driven scheduler picks the subflow, the wire form
    // carries the multipath extension, and subflow 1 travels alias-to-alias
    // so the steering routes pin it to the detour. The repair layer below is
    // fed the *canonical* header — striping never perturbs the FEC/NACK
    // sequence spaces, and retransmissions replay canonically on the primary.
    const SimTime now = host_.loop().now();
    const int id = multipath_->scheduler.pick(now);
    DataHeader wire = header;
    wire.flags |= kFlagMultipath;
    wire.subflow_id = static_cast<std::uint8_t>(id);
    wire.subflow_seq = multipath_->scheduler.stamp(id, media_len, now);
    const auto wire_packet = DataHeader::make_packet(wire, media_len);
    if (id == 0)
      host_.udp_send(port_, client_, wire_packet);
    else
      host_.udp_send_from(multipath_->config.server_alias, port_,
                          subflow1_destination(), wire_packet);
  } else {
    const auto packet = DataHeader::make_packet(header, media_len);
    host_.udp_send(port_, client_, packet);
  }
  send_log_.push_back(
      SendEvent{host_.loop().now(), header.seq, offset, media_len, buffering_phase});
  if (repair_) {
    repair_->buffer.store(header.seq, offset, static_cast<std::uint32_t>(media_len),
                          header.flags);
    if (repair_->config.fec_enabled()) {
      for (const ParityOut& parity : repair_->encoder.feed(
               header.seq, offset, static_cast<std::uint32_t>(media_len), header.flags))
        send_parity(parity);
      // End of stream closes the partial parity rows (reduced k), so the
      // clip tail is covered too.
      if (header.flags & kFlagEndOfStream)
        for (const ParityOut& parity : repair_->encoder.flush()) send_parity(parity);
    }
  }
}

std::size_t StreamServer::send_plain(std::size_t media_len, bool buffering_phase) {
  media_len =
      static_cast<std::size_t>(std::min<std::uint64_t>(media_len, remaining_bytes()));
  if (media_len == 0) {
    finish_stream();
    return 0;
  }
  const std::uint64_t offset = next_offset_;
  next_offset_ += media_len;
  std::uint8_t flags = 0;
  if (next_offset_ >= clip_.total_bytes()) {
    flags |= kFlagEndOfStream;
    finish_stream();
  }
  emit(offset, media_len, flags, buffering_phase);
  return media_len;
}

std::size_t StreamServer::send_thinned(std::size_t media_len, bool buffering_phase) {
  auto& cursor = scaling_->cursor;
  const auto range = cursor.next(media_len, scaling_->controller.keep_fraction());
  if (range.length == 0) {
    // Stream exhausted: announce end-of-stream explicitly (the last data
    // packet may have been sent before the final thinning decision).
    if (!finished_) {
      emit(cursor.position(), 0, kFlagEndOfStream, buffering_phase);
      finish_stream();
    }
    return 0;
  }
  std::uint8_t flags = 0;
  if (range.end_of_stream) {
    flags |= kFlagEndOfStream;
    finish_stream();
  }
  emit(range.offset, range.length, flags, buffering_phase);
  return range.length;
}

void StreamServer::audit_transition(audit::SessionPhase to) {
  if (audit::Auditor* auditor = host_.loop().auditor(); auditor != nullptr)
    auditor->on_session_transition("server", audit_phase_, to, host_.loop().now());
  audit_phase_ = to;
}

void StreamServer::finish_stream() {
  if (finished_) return;
  finished_ = true;
  // A stream that ends without an end-of-stream data packet (teardown, zero
  // remaining bytes) still flushes its open parity rows.
  if (repair_ && repair_->config.fec_enabled() && started_)
    for (const ParityOut& parity : repair_->encoder.flush()) send_parity(parity);
  // A teardown that arrives before any PLAY leaves the session in kIdle:
  // it never streamed, so there is no lifecycle transition to report.
  if (audit_phase_ == audit::SessionPhase::kStreaming)
    audit_transition(audit::SessionPhase::kFinished);
}

std::size_t StreamServer::send_media(std::size_t media_len, bool buffering_phase) {
  if (finished_) return 0;
  return scaling_ ? send_thinned(media_len, buffering_phase)
                  : send_plain(media_len, buffering_phase);
}

void StreamServer::on_scaling_switch() {
  if constexpr (obs::kObsCompiledIn) {
    const SimTime now = host_.loop().now();
    const double keep = scaling_->controller.keep_fraction();
    obs_->switches.add();
    if (obs_->obs->tracing()) {
      obs_->obs->tracer().instant(obs_->switch_name, obs_->track, now, keep);
      obs_->obs->tracer().sample_always(obs_->keep_name, now, keep);
    }
  }
}

Duration StreamServer::streaming_duration() const {
  if (send_log_.size() < 2) return Duration::zero();
  return send_log_.back().time - send_log_.front().time;
}

WmServer::WmServer(Host& host, EncodedClip clip, WmBehavior behavior, std::uint16_t port)
    : StreamServer(host, std::move(clip), port), behavior_(behavior) {}

void WmServer::on_play() {
  const BitRate rate = clip_.info().encoded_rate;
  datagram_media_ = behavior_.media_per_datagram(rate);
  interval_ = behavior_.send_interval(rate, datagram_media_);
  send_next();
}

void WmServer::send_next() {
  const std::size_t sent = send_media(datagram_media_, /*buffering_phase=*/false);
  if (sent == 0 || finished_) return;
  // Under media scaling the pace follows the thinned rate: this datagram's
  // bytes at keep_fraction x the encoding rate.
  Duration next = interval_;
  if (scaling_enabled()) {
    const BitRate scaled_rate =
        clip_.info().encoded_rate.scaled(scaling_keep_fraction());
    next = behavior_.send_interval(scaled_rate, sent);
  }
  host_.loop().post_in(next, [this] { send_next(); }, obs::EventCategory::kTimer);
}

RmServer::RmServer(Host& host, EncodedClip clip, RmBehavior behavior, std::uint16_t port,
                   std::uint64_t seed)
    : StreamServer(host, std::move(clip), port), behavior_(behavior), rng_(seed) {}

void RmServer::on_play() {
  const BitRate rate = clip_.info().encoded_rate;
  burst_end_ = host_.loop().now() +
               behavior_.burst_duration_for_clip(rate, clip_.info().length);
  mean_media_ = behavior_.mean_media_per_datagram(rate);
  send_next();
}

void RmServer::send_next() {
  const bool buffering = host_.loop().now() < burst_end_;
  const BitRate base_rate =
      clip_.info().encoded_rate.scaled(scaling_keep_fraction());
  const BitRate send_rate =
      buffering ? base_rate.scaled(behavior_.buffering_ratio(base_rate)) : base_rate;

  // Draw this packet's size: right-skewed around the rate-dependent mean
  // (mean-1 multiplier keeps the long-run rate on target).
  const double frac =
      std::clamp(rng_.lognormal_mean_cv(1.0, behavior_.size_cv),
                 behavior_.size_spread_min, behavior_.size_spread_max);
  const auto media_len = std::clamp(
      static_cast<std::size_t>(static_cast<double>(mean_media_) * frac + 0.5),
      behavior_.min_media_per_datagram, behavior_.max_media_per_datagram);

  const std::size_t sent = send_media(media_len, buffering);
  if (sent == 0 || finished_) return;

  // Pacing preserves the phase's target rate on average; the lognormal
  // multiplier (mean 1) produces the wide interarrival spread of Figure 8.
  const Duration base = send_rate.transmission_time(sent);
  const double jitter = rng_.lognormal_mean_cv(1.0, behavior_.interarrival_cv);
  host_.loop().post_in(base.scaled(jitter), [this] { send_next(); },
                           obs::EventCategory::kTimer);
}

}  // namespace streamlab
