// The streaming wire protocol between the simulated servers and clients — a
// stand-in for the proprietary MMS (MediaPlayer) and RDT (RealPlayer)
// protocols of 2002, carrying exactly the information the study needs:
// sequence numbers for loss/reorder detection and media byte positions for
// buffer accounting. Control (PLAY/TEARDOWN) and data share a compact
// binary framing distinguished by a magic prefix.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace streamlab {

/// Well-known ports, mirroring the real products' registered ports.
inline constexpr std::uint16_t kRealServerPort = 7070;   // RealServer
inline constexpr std::uint16_t kMediaServerPort = 1755;  // MMS
inline constexpr std::uint16_t kRealClientPort = 6970;
inline constexpr std::uint16_t kMediaClientPort = 7000;

inline constexpr std::uint16_t kDataMagic = 0x4454;     // "DT"
inline constexpr std::uint16_t kControlMagic = 0x4354;  // "CT"
inline constexpr std::size_t kDataHeaderSize = 16;

enum class ControlType : std::uint8_t {
  kPlayRequest = 1,
  kPlayOk = 2,
  kTeardown = 3,
  /// Client-to-server loss feedback driving media scaling (value =
  /// loss fraction in per-mille over the last report interval).
  kReceiverReport = 4,
};

struct ControlMessage {
  ControlType type = ControlType::kPlayRequest;
  std::string clip_id;
  std::uint16_t value = 0;  ///< type-specific payload (receiver reports)
  /// kPlayRequest: media byte position to start (resume) from. 0 plays from
  /// the top; a failover PLAY carries the client's contiguous media position
  /// so the mirror continues the clip instead of restarting it.
  std::uint64_t offset = 0;

  std::vector<std::uint8_t> encode() const;
  static std::optional<ControlMessage> decode(std::span<const std::uint8_t> payload);
};

/// Flag bits carried in data packets.
inline constexpr std::uint8_t kFlagBufferingPhase = 0x01;  ///< server in startup burst
inline constexpr std::uint8_t kFlagEndOfStream = 0x02;     ///< no media after this packet

struct DataHeader {
  std::uint32_t seq = 0;
  std::uint64_t media_offset = 0;
  std::uint8_t flags = 0;

  /// Serializes header followed by `media_len` synthetic payload bytes.
  static std::vector<std::uint8_t> make_packet(const DataHeader& header,
                                               std::size_t media_len);
  /// Parses the header; returns the media byte count via `media_len`.
  static std::optional<DataHeader> decode(std::span<const std::uint8_t> payload,
                                          std::size_t& media_len);
};

}  // namespace streamlab
