// The streaming wire protocol between the simulated servers and clients — a
// stand-in for the proprietary MMS (MediaPlayer) and RDT (RealPlayer)
// protocols of 2002, carrying exactly the information the study needs:
// sequence numbers for loss/reorder detection and media byte positions for
// buffer accounting. Control (PLAY/TEARDOWN) and data share a compact
// binary framing distinguished by a magic prefix.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace streamlab {

/// Well-known ports, mirroring the real products' registered ports.
inline constexpr std::uint16_t kRealServerPort = 7070;   // RealServer
inline constexpr std::uint16_t kMediaServerPort = 1755;  // MMS
inline constexpr std::uint16_t kRealClientPort = 6970;
inline constexpr std::uint16_t kMediaClientPort = 7000;

inline constexpr std::uint16_t kDataMagic = 0x4454;     // "DT"
inline constexpr std::uint16_t kControlMagic = 0x4354;  // "CT"
inline constexpr std::uint16_t kParityMagic = 0x5052;   // "PR"
inline constexpr std::size_t kDataHeaderSize = 16;
inline constexpr std::size_t kParityHeaderSize = 22;

enum class ControlType : std::uint8_t {
  kPlayRequest = 1,
  kPlayOk = 2,
  kTeardown = 3,
  /// Client-to-server loss feedback driving media scaling (value =
  /// loss fraction in per-mille over the last report interval).
  kReceiverReport = 4,
  /// Client-to-server retransmission request (RTCP generic-NACK style):
  /// offset = first missing sequence number (PID), value = bitmap of the 16
  /// sequence numbers following PID (BLP; bit j set => PID+1+j also missing).
  kNack = 5,
  /// Client-to-server multipath path report (MPRTP-style subflow feedback):
  /// value = subflow id, offset packs (highest subflow_seq received << 32) |
  /// packets received on that subflow. Sent over the subflow's own path so
  /// its arrival (or silence) is itself a liveness signal.
  kPathReport = 6,
};

struct ControlMessage {
  ControlType type = ControlType::kPlayRequest;
  std::string clip_id;
  std::uint16_t value = 0;  ///< type-specific payload (receiver reports)
  /// kPlayRequest: media byte position to start (resume) from. 0 plays from
  /// the top; a failover PLAY carries the client's contiguous media position
  /// so the mirror continues the clip instead of restarting it.
  std::uint64_t offset = 0;

  std::vector<std::uint8_t> encode() const;
  static std::optional<ControlMessage> decode(std::span<const std::uint8_t> payload);
};

/// Flag bits carried in data packets.
inline constexpr std::uint8_t kFlagBufferingPhase = 0x01;  ///< server in startup burst
inline constexpr std::uint8_t kFlagEndOfStream = 0x02;     ///< no media after this packet
inline constexpr std::uint8_t kFlagRetransmit = 0x04;      ///< NACK-triggered resend
/// Multipath subflow extension present: the reserved header byte carries the
/// subflow id and a 32-bit per-subflow sequence number follows the fixed
/// header. Packets without the flag are byte-identical to the pre-multipath
/// framing, so single-path runs replay unchanged.
inline constexpr std::uint8_t kFlagMultipath = 0x08;

/// Extra wire bytes a kFlagMultipath packet carries after the fixed header.
inline constexpr std::size_t kMultipathExtensionSize = 4;

struct DataHeader {
  std::uint32_t seq = 0;  ///< stream-wide sequence (FEC/NACK/coverage space)
  std::uint64_t media_offset = 0;
  std::uint8_t flags = 0;
  /// Multipath subflow fields; meaningful only when flags carries
  /// kFlagMultipath. `subflow_seq` increments independently per path, which
  /// is what per-path gap detection and loss accounting key on.
  std::uint8_t subflow_id = 0;
  std::uint32_t subflow_seq = 0;

  /// Serializes header followed by `media_len` synthetic payload bytes.
  static std::vector<std::uint8_t> make_packet(const DataHeader& header,
                                               std::size_t media_len);
  /// Parses the header; returns the media byte count via `media_len`.
  static std::optional<DataHeader> decode(std::span<const std::uint8_t> payload,
                                          std::size_t& media_len);
};

/// FEC parity packet covering an interleaved row of k data packets: sequence
/// numbers block_base, block_base + stride, ..., block_base + stride*(k-1).
/// The XOR accumulators let the decoder reconstruct the header of any single
/// missing packet in the row; the payload itself is deterministic from the
/// recovered media_offset, so only the header fields travel in the parity.
/// The packet is padded to the longest covered payload so the simulated link
/// pays honest parity bandwidth.
struct ParityHeader {
  std::uint8_t k = 0;                  ///< data packets covered by this row
  std::uint8_t stride = 1;             ///< interleave distance between seqs
  std::uint32_t block_base = 0;        ///< first covered sequence number
  std::uint64_t xor_media_offset = 0;  ///< XOR of covered media offsets
  std::uint32_t xor_media_len = 0;     ///< XOR of covered payload lengths
  std::uint8_t xor_flags = 0;          ///< XOR of covered flag bytes

  /// True when `seq` is one of the k covered sequence numbers.
  bool covers(std::uint32_t seq) const;

  /// Serializes header followed by `pad_len` filler bytes (bandwidth model).
  static std::vector<std::uint8_t> make_packet(const ParityHeader& header,
                                               std::size_t pad_len);
  static std::optional<ParityHeader> decode(std::span<const std::uint8_t> payload);
};

}  // namespace streamlab
