#include "players/client.hpp"
#include <algorithm>

#include "net/headers.hpp"
#include "util/bytes.hpp"


namespace streamlab {

StreamClient::StreamClient(Host& host, const EncodedClip& clip, Endpoint server,
                           Config config)
    : host_(host), clip_(clip), server_(server), config_(config) {
  port_ = config_.local_port != 0 ? config_.local_port
          : config_.kind == PlayerKind::kRealPlayer ? kRealClientPort
                                                    : kMediaClientPort;
  host_.udp_bind(port_, [this](std::span<const std::uint8_t> payload, Endpoint from,
                               SimTime now) { handle_datagram(payload, from, now); });

  // With mirrors configured, Destination Unreachable about the active server
  // is a fast-fail signal: listen for it ahead of the inactivity watchdog.
  if (!config_.failover.mirrors.empty() &&
      config_.failover.icmp_unreachable_threshold > 0) {
    icmp_handler_installed_ = true;
    host_.set_icmp_handler(
        [this](const IcmpHeader& icmp, const Ipv4Header&,
               std::span<const std::uint8_t> payload, SimTime now) {
          on_icmp(icmp, payload, now);
        });
  }

  if constexpr (obs::kObsCompiledIn) {
    if (obs::Obs* obs = host_.loop().observer(); obs != nullptr) {
      obs_ = std::make_unique<ObsState>();
      obs_->obs = obs;
      const std::string tag =
          config_.kind == PlayerKind::kRealPlayer ? "real" : "media";
      const std::string prefix = "player." + tag + ".";
      obs_->play_attempts = obs->registry().counter(prefix + "play_attempts");
      obs_->play_retries = obs->registry().counter(prefix + "play_retries");
      obs_->watchdog_fired = obs->registry().counter(prefix + "watchdog_fired");
      obs_->rebuffers = obs->registry().counter(prefix + "rebuffer_events");
      obs_->failovers = obs->registry().counter(prefix + "failovers");
      obs_->unreachables = obs->registry().counter(prefix + "icmp_unreachables");
      obs::Tracer& tracer = obs->tracer();
      obs_->track = tracer.intern("player." + tag);
      obs_->retry_name = tracer.intern("play-retry");
      obs_->established_name = tracer.intern("session-established");
      obs_->dead_name = tracer.intern("stream-dead");
      obs_->abandoned_name = tracer.intern("session-abandoned");
      obs_->rebuffer_name = tracer.intern("rebuffer");
      obs_->goodput_name = tracer.intern(prefix + "goodput_kbps");
      obs_->failover_name = tracer.intern("failover");
      obs_->unreachable_name = tracer.intern("icmp-unreachable");
    }
  }
}

StreamClient::~StreamClient() {
  play_timer_.cancel();
  watchdog_timer_.cancel();
  if (icmp_handler_installed_) host_.set_icmp_handler({});
  host_.udp_unbind(port_);
}

void StreamClient::start() {
  enter_phase(audit::SessionPhase::kConnecting);
  next_play_timeout_ = config_.recovery.play_timeout;
  send_play();
}

void StreamClient::enter_phase(audit::SessionPhase to) {
  // Every real lifecycle transition flows through here so an attached
  // auditor can validate the session state machine as it happens.
  if (audit::Auditor* a = host_.loop().auditor())
    a->on_session_transition(
        config_.kind == PlayerKind::kRealPlayer ? "client.real" : "client.media",
        phase_, to, host_.loop().now());
  phase_ = to;
}

void StreamClient::obs_instant(std::uint16_t name, SimTime now, double value) {
  if constexpr (obs::kObsCompiledIn) {
    if (obs_ && obs_->obs->tracing())
      obs_->obs->tracer().instant(name, obs_->track, now, value);
  }
}

void StreamClient::obs_end_rebuffer(SimTime now) {
  if constexpr (obs::kObsCompiledIn) {
    if (obs_ && obs_->rebuffer_span != 0) {
      obs_->obs->tracer().end_span(obs_->rebuffer_span, now);
      obs_->rebuffer_span = 0;
    }
  }
}

void StreamClient::obs_goodput(std::size_t bytes, SimTime now) {
  // Per-second goodput series: close the window once >= 1 s of sim time has
  // elapsed, then start the next one with the packet that closed it.
  if (obs_->goodput_window_bytes == 0 && obs_->goodput_window_start == SimTime()) {
    obs_->goodput_window_start = now;
  }
  const Duration elapsed = now - obs_->goodput_window_start;
  if (elapsed >= Duration::seconds(1)) {
    const double kbps = static_cast<double>(obs_->goodput_window_bytes) * 8.0 /
                        elapsed.to_seconds() / 1000.0;
    if (obs_->obs->tracing())
      obs_->obs->tracer().sample_always(obs_->goodput_name, now, kbps);
    obs_->goodput_window_start = now;
    obs_->goodput_window_bytes = 0;
  }
  obs_->goodput_window_bytes += bytes;
}

void StreamClient::send_play() {
  ++play_attempts_;
  ++play_attempts_current_;
  if (obs_) {
    obs_->play_attempts.add();
    if (play_attempts_ > 1) {
      obs_->play_retries.add();
      obs_instant(obs_->retry_name, host_.loop().now(),
                  static_cast<double>(play_attempts_));
    }
  }
  ControlMessage play{ControlType::kPlayRequest, clip_.info().id()};
  play.offset = resume_offset_;  // nonzero only after a failover
  const auto bytes = play.encode();
  host_.udp_send(port_, server_, bytes);
  if (config_.recovery.play_retry) {
    play_timer_ = host_.loop().schedule_in(next_play_timeout_,
                                           [this] { on_play_timeout(); },
                                           obs::EventCategory::kControl);
    next_play_timeout_ = next_play_timeout_.scaled(config_.recovery.backoff);
  }
}

void StreamClient::on_play_timeout() {
  // `current_server_answered_` (not the sticky session_established()) gates
  // the retry loop so a post-failover PLAY keeps retrying against the mirror
  // even though the original server once answered.
  if (current_server_answered_ || session_abandoned_ || stream_dead_) return;
  if (play_attempts_current_ >= static_cast<std::uint32_t>(
                                    std::max(1, config_.recovery.max_play_attempts))) {
    // This server never answered: move to the next mirror if one remains,
    // otherwise give the session up.
    if (mirror_available()) {
      failover(host_.loop().now());
      return;
    }
    session_abandoned_ = true;
    failure_time_ = host_.loop().now();
    enter_phase(audit::SessionPhase::kAbandoned);
    if (obs_) obs_instant(obs_->abandoned_name, host_.loop().now());
    return;
  }
  send_play();
}

void StreamClient::on_session_established(SimTime now) {
  play_timer_.cancel();
  current_server_answered_ = true;
  liveness_anchor_ = now;
  if (established_time_) {
    // A mirror answered after a failover: re-enter kEstablished and re-arm
    // the watchdog against the new server's stream (it was disarmed while
    // the failover PLAY was in flight).
    if (phase_ == audit::SessionPhase::kConnecting) {
      enter_phase(audit::SessionPhase::kEstablished);
      if (obs_) obs_instant(obs_->established_name, now);
      if (config_.recovery.inactivity_timeout > Duration::zero())
        arm_watchdog(config_.recovery.inactivity_timeout);
    }
    return;
  }
  established_time_ = now;
  enter_phase(audit::SessionPhase::kEstablished);
  if (obs_) obs_instant(obs_->established_name, now);
  // Arm the inactivity watchdog at establishment, not at first data: a
  // PLAY-OK followed by a permanent outage must still be detected as a
  // dead session rather than waiting forever for data that never comes.
  if (config_.recovery.inactivity_timeout > Duration::zero()) {
    arm_watchdog(config_.recovery.inactivity_timeout);
  }
}

void StreamClient::arm_watchdog(Duration delay) {
  watchdog_timer_ = host_.loop().schedule_in(delay, [this] { on_watchdog(); },
                                             obs::EventCategory::kControl);
}

void StreamClient::on_watchdog() {
  if (eos_received_ || stream_dead_ || session_abandoned_) return;
  const Duration window = config_.recovery.inactivity_timeout;
  const SimTime now = host_.loop().now();
  // Silence is measured from the last data packet, or — before any data
  // arrived — from session (re-)establishment, so the PLAY-OK→first-data
  // gap is covered too. The max() matters after a failover: last_data_ may
  // predate the mirror's establishment.
  const SimTime anchor = last_data_ ? std::max(*last_data_, liveness_anchor_)
                                    : liveness_anchor_;
  const SimTime deadline = anchor + window;
  if (now < deadline) {
    // Data arrived since the timer was armed; sleep until the silence
    // window measured from the latest packet would elapse.
    watchdog_timer_ = host_.loop().schedule_at(deadline, [this] { on_watchdog(); },
                                               obs::EventCategory::kControl);
    return;
  }
  if (mirror_available()) {
    // Silence exceeded the window but a mirror remains: fail the session
    // over instead of declaring it dead.
    if (obs_) obs_->watchdog_fired.add();
    failover(now);
    return;
  }
  // Silence exceeded the window with no end-of-stream: the session is dead.
  stream_dead_ = true;
  failure_time_ = now;
  enter_phase(audit::SessionPhase::kDead);
  play_timer_.cancel();
  if (obs_) {
    obs_->watchdog_fired.add();
    obs_instant(obs_->dead_name, now);
  }
}

void StreamClient::on_icmp(const IcmpHeader& icmp, std::span<const std::uint8_t> payload,
                           SimTime now) {
  if (icmp.type != IcmpType::kDestinationUnreachable) return;
  if (eos_received_ || stream_dead_ || session_abandoned_) return;
  // The error quotes the offending IP header; only errors about traffic we
  // sent toward the *active* server count (stale errors about an abandoned
  // server must not re-trigger a failover).
  ByteReader reader(payload);
  const auto quoted = Ipv4Header::decode(reader);
  if (!quoted || quoted->dst != server_.ip) return;
  ++icmp_unreachables_;
  ++unreachable_streak_;
  if (obs_) {
    obs_->unreachables.add();
    obs_instant(obs_->unreachable_name, now, static_cast<double>(unreachable_streak_));
  }
  if (unreachable_streak_ >= config_.failover.icmp_unreachable_threshold &&
      mirror_available()) {
    failover(now);
  }
}

void StreamClient::failover(SimTime now) {
  if (!mirror_available()) return;
  play_timer_.cancel();
  watchdog_timer_.cancel();
  ++failover_count_;
  server_ = config_.failover.mirrors[next_mirror_++];

  // The mirror is a fresh server whose sequence numbering restarts at 0:
  // fold the finished epoch's losses into the accumulator and track the new
  // epoch's sequence space from scratch. In-flight packets from the old
  // server are rejected by handle_datagram's source filter.
  if (any_seq_seen_) {
    const std::uint64_t expected = max_seq_seen_ + 1;
    const std::uint64_t unique = seq_seen_.total_covered();
    lost_prior_epochs_ += expected > unique ? expected - unique : 0;
  }
  seq_seen_ = IntervalSet();
  max_seq_seen_ = 0;
  any_seq_seen_ = false;
  report_window_max_seq_ = 0;
  report_window_received_ = packets_.size() + pending_app_.size();

  unreachable_streak_ = 0;
  current_server_answered_ = false;
  play_attempts_current_ = 0;
  next_play_timeout_ = config_.recovery.play_timeout;
  // Ask the mirror to resume at the longest contiguous prefix already
  // received — everything past it may have holes and will be re-sent.
  resume_offset_ = coverage_.contiguous_prefix();

  if (phase_ == audit::SessionPhase::kEstablished)
    enter_phase(audit::SessionPhase::kConnecting);
  if (obs_) {
    obs_->failovers.add();
    obs_instant(obs_->failover_name, now, static_cast<double>(failover_count_));
  }
  send_play();
}

void StreamClient::handle_datagram(std::span<const std::uint8_t> payload, Endpoint from,
                                   SimTime now) {
  if (from.ip != server_.ip) return;
  if (auto ctrl = ControlMessage::decode(payload)) {
    if (ctrl->type == ControlType::kPlayOk) {
      play_ok_received_ = true;
      on_session_established(now);
    }
    return;
  }
  std::size_t media_len = 0;
  if (auto header = DataHeader::decode(payload, media_len)) {
    on_data(*header, media_len, now);
  }
}

void StreamClient::on_data(const DataHeader& header, std::size_t media_len, SimTime now) {
  if (stream_dead_) return;  // the watchdog already tore the session down
  unreachable_streak_ = 0;   // data disproves an unreachable path
  if (!first_data_) {
    first_data_ = now;
    on_session_established(now);
    if (config_.scaling.enabled && !report_timer_armed_) {
      report_timer_armed_ = true;
      report_window_max_seq_ = header.seq;
      host_.loop().schedule_in(config_.scaling.report_interval,
                               [this] { send_receiver_report(); },
                               obs::EventCategory::kControl);
    }
  } else if (!current_server_answered_) {
    // First data from a mirror after a failover whose PLAY-OK was lost.
    on_session_established(now);
  }
  last_data_ = now;
  wire_media_bytes_ += kDataHeaderSize + media_len;
  if (obs_) obs_goodput(kDataHeaderSize + media_len, now);

  if (seq_seen_.covers(header.seq, std::uint64_t{header.seq} + 1)) {
    ++duplicate_packets_;
  } else {
    seq_seen_.insert(header.seq, std::uint64_t{header.seq} + 1);
  }
  if (!any_seq_seen_ || header.seq > max_seq_seen_) {
    max_seq_seen_ = header.seq;
    any_seq_seen_ = true;
  }
  if (header.flags & kFlagEndOfStream) eos_received_ = true;

  coverage_.insert(header.media_offset, header.media_offset + media_len);

  PacketEvent ev;
  ev.network_time = now;
  ev.seq = header.seq;
  ev.media_offset = header.media_offset;
  ev.media_len = media_len;
  ev.flags = header.flags;

  if (config_.kind == PlayerKind::kMediaPlayer) {
    // Interleaving: the engine releases packets to the application in
    // batches once per app_batch_interval (Figure 12).
    pending_app_.push_back(ev);
    if (!batch_timer_armed_) {
      batch_timer_armed_ = true;
      host_.loop().schedule_in(config_.wm.app_batch_interval,
                               [this] { release_app_batch(); },
                               obs::EventCategory::kTimer);
    }
  } else {
    ev.app_time = now;
    packets_.push_back(ev);
    app_coverage_.insert(ev.media_offset, ev.media_offset + ev.media_len);
  }

  if (!playout_start_) {
    const Duration preroll = config_.kind == PlayerKind::kMediaPlayer
                                 ? config_.wm.preroll
                                 : config_.rm.preroll;
    begin_playout(*first_data_ + preroll);
  }
}

void StreamClient::send_receiver_report() {
  // Loss over the report window, from the sequence-number advance vs the
  // datagrams actually received.
  const std::uint64_t expected =
      max_seq_seen_ > report_window_max_seq_ ? max_seq_seen_ - report_window_max_seq_ : 0;
  const std::uint64_t received_total = packets_.size() + pending_app_.size();
  const std::uint64_t received_window =
      received_total > report_window_received_ ? received_total - report_window_received_
                                               : 0;
  double loss = 0.0;
  if (expected > 0 && received_window < expected)
    loss = 1.0 - static_cast<double>(received_window) / static_cast<double>(expected);
  report_window_max_seq_ = max_seq_seen_;
  report_window_received_ = received_total;

  ControlMessage report{ControlType::kReceiverReport, clip_.info().id()};
  report.value = static_cast<std::uint16_t>(std::min(1000.0, loss * 1000.0 + 0.5));
  const auto bytes = report.encode();
  host_.udp_send(port_, server_, bytes);
  ++reports_sent_;

  if (!eos_received_ && !stream_dead_) {
    host_.loop().schedule_in(config_.scaling.report_interval,
                             [this] { send_receiver_report(); },
                             obs::EventCategory::kControl);
  }
}

void StreamClient::release_app_batch() {
  const SimTime now = host_.loop().now();
  while (!pending_app_.empty()) {
    PacketEvent ev = pending_app_.front();
    pending_app_.pop_front();
    ev.app_time = now;
    app_coverage_.insert(ev.media_offset, ev.media_offset + ev.media_len);
    packets_.push_back(ev);
  }
  if (eos_received_ || stream_dead_) {
    batch_timer_armed_ = false;
    return;
  }
  host_.loop().schedule_in(config_.wm.app_batch_interval, [this] { release_app_batch(); },
                           obs::EventCategory::kTimer);
}

void StreamClient::begin_playout(SimTime when) {
  playout_start_ = when;
  if (config_.rebuffering) {
    // Stall-capable playout walks frames one at a time so stalls can shift
    // every later deadline.
    schedule_frame(0);
    return;
  }
  // Drop-late playout: schedule every frame's decode deadline up front; the
  // event loop keeps them ordered and the per-frame closure checks data
  // availability.
  for (std::size_t i = 0; i < clip_.frames().size(); ++i) {
    const SimTime deadline = when + clip_.frames()[i].pts;
    host_.loop().schedule_at(deadline, [this, i] { decode_frame(i); },
                             obs::EventCategory::kPlayout);
  }
}

void StreamClient::schedule_frame(std::size_t index) {
  if (index >= clip_.frames().size()) {
    playback_finished_ = true;
    playback_end_ = host_.loop().now();
    if (phase_ == audit::SessionPhase::kEstablished)
      enter_phase(audit::SessionPhase::kCompleted);
    return;
  }
  const SimTime deadline = *playout_start_ + playout_shift_ + clip_.frames()[index].pts;
  current_stall_ = Duration::zero();
  host_.loop().schedule_at(deadline, [this, index] { decode_frame_rebuffering(index); },
                           obs::EventCategory::kPlayout);
}

void StreamClient::abandon_remaining_frames(std::size_t from_index) {
  // Stream declared dead mid-playout: the remaining frames can never be
  // decoded, so account them as dropped at once instead of stalling
  // max_stall on each — this is what lets the event loop drain promptly
  // after a fatal outage.
  frames_dropped_ +=
      static_cast<std::uint32_t>(clip_.frames().size() - from_index);
  playback_end_ = host_.loop().now();
}

void StreamClient::close_stall_interval(SimTime now) {
  if (stall_start_) {
    stalls_.emplace_back(*stall_start_, now);
    stall_start_.reset();
  }
}

void StreamClient::decode_frame_rebuffering(std::size_t index) {
  if (stream_dead_) {
    obs_end_rebuffer(host_.loop().now());
    close_stall_interval(host_.loop().now());
    abandon_remaining_frames(index);
    return;
  }
  const EncodedFrame& frame = clip_.frames()[index];
  const bool ready =
      app_coverage_.covers(frame.byte_offset, frame.byte_offset + frame.bytes);

  if (!ready && current_stall_ < config_.max_stall) {
    // Stall: the picture freezes while the buffer refills.
    if (current_stall_ == Duration::zero()) {
      ++rebuffer_events_;
      stall_start_ = host_.loop().now();
      if (obs_) {
        obs_->rebuffers.add();
        if constexpr (obs::kObsCompiledIn) {
          if (obs_->obs->tracing())
            obs_->rebuffer_span = obs_->obs->tracer().begin_span(
                obs_->rebuffer_name, obs_->track, host_.loop().now());
        }
      }
    }
    const Duration poll = Duration::millis(100);
    current_stall_ += poll;
    playout_shift_ += poll;
    total_stall_time_ += poll;
    host_.loop().schedule_in(poll, [this, index] { decode_frame_rebuffering(index); },
                             obs::EventCategory::kPlayout);
    return;
  }
  obs_end_rebuffer(host_.loop().now());
  close_stall_interval(host_.loop().now());

  FrameEvent ev;
  ev.time = host_.loop().now();
  ev.frame_index = frame.index;
  ev.rendered = ready;
  if (ready)
    ++frames_rendered_;
  else
    ++frames_dropped_;  // abandoned after max_stall
  frame_events_.push_back(ev);
  schedule_frame(index + 1);
}

void StreamClient::decode_frame(std::size_t index) {
  const EncodedFrame& frame = clip_.frames()[index];
  FrameEvent ev;
  ev.time = host_.loop().now();
  ev.frame_index = frame.index;
  // A dead session renders nothing more, even from buffered data.
  ev.rendered = !stream_dead_ &&
                app_coverage_.covers(frame.byte_offset,
                                     frame.byte_offset + frame.bytes);
  if (ev.rendered)
    ++frames_rendered_;
  else
    ++frames_dropped_;
  frame_events_.push_back(ev);

  if (index + 1 == clip_.frames().size()) {
    playback_finished_ = true;
    playback_end_ = host_.loop().now();
    // Pre-scheduled drop-late deadlines keep firing after a watchdog death,
    // so the playout timeline can end in a dead session; only a live one
    // transitions to kCompleted.
    if (phase_ == audit::SessionPhase::kEstablished)
      enter_phase(audit::SessionPhase::kCompleted);
  }
}

std::uint64_t StreamClient::packets_lost() const {
  // Count distinct missing sequences, so duplicated or reordered datagrams
  // never inflate (or deflate) the loss figure. Sequence epochs finished by
  // earlier failovers contribute their accumulated losses.
  std::uint64_t current = 0;
  if (any_seq_seen_) {
    const std::uint64_t expected = max_seq_seen_ + 1;
    const std::uint64_t unique = seq_seen_.total_covered();
    current = expected > unique ? expected - unique : 0;
  }
  return lost_prior_epochs_ + current;
}

BitRate StreamClient::average_playback_rate() const {
  if (!first_data_ || !last_data_ || *last_data_ <= *first_data_) return BitRate::zero();
  const double secs = (*last_data_ - *first_data_).to_seconds();
  const double bits = static_cast<double>(wire_media_bytes_) * 8.0;
  return BitRate(static_cast<std::int64_t>(bits / secs + 0.5));
}

}  // namespace streamlab
