#include "players/client.hpp"
#include <algorithm>

#include "net/headers.hpp"
#include "util/bytes.hpp"


namespace streamlab {

StreamClient::StreamClient(Host& host, const EncodedClip& clip, Endpoint server,
                           Config config)
    : host_(host), clip_(clip), server_(server), config_(config) {
  port_ = config_.local_port != 0 ? config_.local_port
          : config_.kind == PlayerKind::kRealPlayer ? kRealClientPort
                                                    : kMediaClientPort;
  host_.udp_bind(port_, [this](std::span<const std::uint8_t> payload, Endpoint from,
                               SimTime now) { handle_datagram(payload, from, now); });

  if (config_.repair.enabled()) repair_ = std::make_unique<RepairState>(config_.repair);
  if (config_.multipath.enabled)
    multipath_ = std::make_unique<MultipathState>(config_.multipath);

  // With mirrors configured, Destination Unreachable about the active server
  // is a fast-fail signal: listen for it ahead of the inactivity watchdog.
  if (!config_.failover.mirrors.empty() &&
      config_.failover.icmp_unreachable_threshold > 0) {
    icmp_handler_installed_ = true;
    host_.set_icmp_handler(
        [this](const IcmpHeader& icmp, const Ipv4Header&,
               std::span<const std::uint8_t> payload, SimTime now) {
          on_icmp(icmp, payload, now);
        });
  }

  if constexpr (obs::kObsCompiledIn) {
    if (obs::Obs* obs = host_.loop().observer(); obs != nullptr) {
      obs_ = std::make_unique<ObsState>();
      obs_->obs = obs;
      const std::string tag =
          config_.kind == PlayerKind::kRealPlayer ? "real" : "media";
      const std::string prefix = "player." + tag + ".";
      obs_->play_attempts = obs->registry().counter(prefix + "play_attempts");
      obs_->play_retries = obs->registry().counter(prefix + "play_retries");
      obs_->watchdog_fired = obs->registry().counter(prefix + "watchdog_fired");
      obs_->rebuffers = obs->registry().counter(prefix + "rebuffer_events");
      obs_->failovers = obs->registry().counter(prefix + "failovers");
      obs_->unreachables = obs->registry().counter(prefix + "icmp_unreachables");
      obs_->recovered = obs->registry().counter(prefix + "packets_recovered");
      obs_->nacks = obs->registry().counter(prefix + "nacks_sent");
      obs_->nack_suppressed = obs->registry().counter(prefix + "nacks_suppressed");
      obs_->path_reports = obs->registry().counter(prefix + "path_reports_sent");
      obs_->repair_latency =
          obs->registry().histogram(prefix + "repair_latency_ms", 5.0, 100);
      obs::Tracer& tracer = obs->tracer();
      obs_->track = tracer.intern("player." + tag);
      obs_->retry_name = tracer.intern("play-retry");
      obs_->established_name = tracer.intern("session-established");
      obs_->dead_name = tracer.intern("stream-dead");
      obs_->abandoned_name = tracer.intern("session-abandoned");
      obs_->rebuffer_name = tracer.intern("rebuffer");
      obs_->goodput_name = tracer.intern(prefix + "goodput_kbps");
      obs_->failover_name = tracer.intern("failover");
      obs_->unreachable_name = tracer.intern("icmp-unreachable");
      obs_->recovered_name = tracer.intern("packet-recovered");
    }
  }
}

StreamClient::~StreamClient() {
  play_timer_.cancel();
  watchdog_timer_.cancel();
  if (repair_) repair_->nack_timer.cancel();
  if (multipath_) multipath_->report_timer.cancel();
  if (icmp_handler_installed_) host_.set_icmp_handler({});
  host_.udp_unbind(port_);
}

void StreamClient::start() {
  enter_phase(audit::SessionPhase::kConnecting);
  next_play_timeout_ = config_.recovery.play_timeout;
  send_play();
}

void StreamClient::enter_phase(audit::SessionPhase to) {
  // Every real lifecycle transition flows through here so an attached
  // auditor can validate the session state machine as it happens.
  if (audit::Auditor* a = host_.loop().auditor())
    a->on_session_transition(
        config_.kind == PlayerKind::kRealPlayer ? "client.real" : "client.media",
        phase_, to, host_.loop().now());
  phase_ = to;
}

void StreamClient::obs_instant(std::uint16_t name, SimTime now, double value) {
  if constexpr (obs::kObsCompiledIn) {
    if (obs_ && obs_->obs->tracing())
      obs_->obs->tracer().instant(name, obs_->track, now, value);
  }
}

void StreamClient::obs_end_rebuffer(SimTime now) {
  if constexpr (obs::kObsCompiledIn) {
    if (obs_ && obs_->rebuffer_span != 0) {
      obs_->obs->tracer().end_span(obs_->rebuffer_span, now);
      obs_->rebuffer_span = 0;
    }
  }
}

void StreamClient::obs_goodput(std::size_t bytes, SimTime now) {
  // Per-second goodput series: close the window once >= 1 s of sim time has
  // elapsed, then start the next one with the packet that closed it.
  if (obs_->goodput_window_bytes == 0 && obs_->goodput_window_start == SimTime()) {
    obs_->goodput_window_start = now;
  }
  const Duration elapsed = now - obs_->goodput_window_start;
  if (elapsed >= Duration::seconds(1)) {
    const double kbps = static_cast<double>(obs_->goodput_window_bytes) * 8.0 /
                        elapsed.to_seconds() / 1000.0;
    if (obs_->obs->tracing())
      obs_->obs->tracer().sample_always(obs_->goodput_name, now, kbps);
    obs_->goodput_window_start = now;
    obs_->goodput_window_bytes = 0;
  }
  obs_->goodput_window_bytes += bytes;
}

void StreamClient::send_play() {
  ++play_attempts_;
  ++play_attempts_current_;
  if (obs_) {
    obs_->play_attempts.add();
    if (play_attempts_ > 1) {
      obs_->play_retries.add();
      obs_instant(obs_->retry_name, host_.loop().now(),
                  static_cast<double>(play_attempts_));
    }
  }
  ControlMessage play{ControlType::kPlayRequest, clip_.info().id()};
  play.offset = resume_offset_;  // nonzero only after a failover
  const auto bytes = play.encode();
  if (repair_) repair_->play_sent_at = host_.loop().now();
  host_.udp_send(port_, server_, bytes);
  if (config_.recovery.play_retry) {
    play_timer_ = host_.loop().schedule_in(next_play_timeout_,
                                           [this] { on_play_timeout(); },
                                           obs::EventCategory::kControl);
    next_play_timeout_ = next_play_timeout_.scaled(config_.recovery.backoff);
  }
}

void StreamClient::on_play_timeout() {
  // `current_server_answered_` (not the sticky session_established()) gates
  // the retry loop so a post-failover PLAY keeps retrying against the mirror
  // even though the original server once answered.
  if (current_server_answered_ || session_abandoned_ || stream_dead_) return;
  if (play_attempts_current_ >= static_cast<std::uint32_t>(
                                    std::max(1, config_.recovery.max_play_attempts))) {
    // This server never answered: move to the next mirror if one remains,
    // otherwise give the session up.
    if (mirror_available()) {
      failover(host_.loop().now());
      return;
    }
    session_abandoned_ = true;
    failure_time_ = host_.loop().now();
    enter_phase(audit::SessionPhase::kAbandoned);
    if (repair_) repair_->nack_timer.cancel();
    if (obs_) obs_instant(obs_->abandoned_name, host_.loop().now());
    return;
  }
  send_play();
}

void StreamClient::on_session_established(SimTime now) {
  play_timer_.cancel();
  current_server_answered_ = true;
  liveness_anchor_ = now;
  if (repair_ && !repair_->rtt_known) {
    // The PLAY -> first-response round trip seeds the NACK retry delay. A
    // retried handshake overestimates the RTT, which only makes the retry
    // schedule more conservative.
    repair_->rtt_known = true;
    repair_->nack.set_rtt(now - repair_->play_sent_at);
  }
  if (established_time_) {
    // A mirror answered after a failover: re-enter kEstablished and re-arm
    // the watchdog against the new server's stream (it was disarmed while
    // the failover PLAY was in flight).
    if (phase_ == audit::SessionPhase::kConnecting) {
      enter_phase(audit::SessionPhase::kEstablished);
      if (obs_) obs_instant(obs_->established_name, now);
      if (config_.recovery.inactivity_timeout > Duration::zero())
        arm_watchdog(config_.recovery.inactivity_timeout);
    }
    return;
  }
  established_time_ = now;
  enter_phase(audit::SessionPhase::kEstablished);
  if (obs_) obs_instant(obs_->established_name, now);
  // Arm the inactivity watchdog at establishment, not at first data: a
  // PLAY-OK followed by a permanent outage must still be detected as a
  // dead session rather than waiting forever for data that never comes.
  if (config_.recovery.inactivity_timeout > Duration::zero()) {
    arm_watchdog(config_.recovery.inactivity_timeout);
  }
}

void StreamClient::arm_watchdog(Duration delay) {
  watchdog_timer_ = host_.loop().schedule_in(delay, [this] { on_watchdog(); },
                                             obs::EventCategory::kControl);
}

void StreamClient::on_watchdog() {
  // playback_finished_ covers sessions whose end-of-stream marker was lost:
  // the drop-late timeline still completes them, and a completed session
  // must never be re-declared dead by a stale silence window.
  if (eos_received_ || stream_dead_ || session_abandoned_ || playback_finished_)
    return;
  const Duration window = config_.recovery.inactivity_timeout;
  const SimTime now = host_.loop().now();
  // Silence is measured from the last data packet, or — before any data
  // arrived — from session (re-)establishment, so the PLAY-OK→first-data
  // gap is covered too. The max() matters after a failover: last_data_ may
  // predate the mirror's establishment.
  const SimTime anchor = last_data_ ? std::max(*last_data_, liveness_anchor_)
                                    : liveness_anchor_;
  const SimTime deadline = anchor + window;
  if (now < deadline) {
    // Data arrived since the timer was armed; sleep until the silence
    // window measured from the latest packet would elapse.
    watchdog_timer_ = host_.loop().schedule_at(deadline, [this] { on_watchdog(); },
                                               obs::EventCategory::kControl);
    return;
  }
  if (mirror_available()) {
    // Silence exceeded the window but a mirror remains: fail the session
    // over instead of declaring it dead.
    if (obs_) obs_->watchdog_fired.add();
    failover(now);
    return;
  }
  // Silence exceeded the window with no end-of-stream: the session is dead.
  stream_dead_ = true;
  failure_time_ = now;
  enter_phase(audit::SessionPhase::kDead);
  play_timer_.cancel();
  if (repair_) repair_->nack_timer.cancel();
  if (obs_) {
    obs_->watchdog_fired.add();
    obs_instant(obs_->dead_name, now);
  }
}

void StreamClient::on_icmp(const IcmpHeader& icmp, std::span<const std::uint8_t> payload,
                           SimTime now) {
  if (icmp.type != IcmpType::kDestinationUnreachable) return;
  if (eos_received_ || stream_dead_ || session_abandoned_) return;
  // The error quotes the offending IP header; only errors about traffic we
  // sent toward the *active* server count (stale errors about an abandoned
  // server must not re-trigger a failover).
  ByteReader reader(payload);
  const auto quoted = Ipv4Header::decode(reader);
  if (!quoted || quoted->dst != server_.ip) return;
  ++icmp_unreachables_;
  ++unreachable_streak_;
  if (obs_) {
    obs_->unreachables.add();
    obs_instant(obs_->unreachable_name, now, static_cast<double>(unreachable_streak_));
  }
  if (unreachable_streak_ >= config_.failover.icmp_unreachable_threshold &&
      mirror_available()) {
    failover(now);
  }
}

void StreamClient::failover(SimTime now) {
  if (!mirror_available()) return;
  play_timer_.cancel();
  watchdog_timer_.cancel();
  ++failover_count_;
  server_ = config_.failover.mirrors[next_mirror_++];

  // The mirror is a fresh server whose sequence numbering restarts at 0:
  // fold the finished epoch's losses into the accumulator and track the new
  // epoch's sequence space from scratch. In-flight packets from the old
  // server are rejected by handle_datagram's source filter.
  if (any_seq_seen_) {
    const std::uint64_t expected = max_seq_seen_ + 1;
    const std::uint64_t unique = seq_seen_.total_covered();
    lost_prior_epochs_ += expected > unique ? expected - unique : 0;
  }
  seq_seen_ = IntervalSet();
  max_seq_seen_ = 0;
  any_seq_seen_ = false;
  report_window_max_seq_ = 0;
  report_window_received_ = packets_.size() + pending_app_.size();

  // Multipath striping ends with the original server: the held join-buffer
  // packets are delivered (their media bytes may lie below the resume
  // offset, so dropping them would leave app-coverage holes the mirror
  // never refills), then the buffer resets and the mirror epoch runs
  // single-path — mirrors do not stripe.
  if (multipath_) {
    for (const JoinPacket& held : multipath_->join.flush()) {
      PacketEvent ev;
      ev.network_time = held.arrival;
      ev.seq = held.seq;
      ev.media_offset = held.media_offset;
      ev.media_len = held.media_len;
      ev.flags = held.flags;
      deliver_app(ev, now);
    }
    multipath_->join.reset();
    multipath_->report_timer.cancel();
    multipath_->report_timer_armed = false;
    multipath_->stopped = true;
  }

  // The mirror's sequence space is fresh: row state, gap registry and
  // pending NACKs from the old epoch are meaningless against it.
  if (repair_) {
    if (repair_->decoder) repair_->decoder->reset();
    repair_->nack.reset();
    repair_->nack_timer.cancel();
    repair_->missing_since.clear();
  }

  unreachable_streak_ = 0;
  current_server_answered_ = false;
  play_attempts_current_ = 0;
  next_play_timeout_ = config_.recovery.play_timeout;
  // Ask the mirror to resume at the longest contiguous prefix already
  // received — everything past it may have holes and will be re-sent.
  resume_offset_ = coverage_.contiguous_prefix();

  if (phase_ == audit::SessionPhase::kEstablished)
    enter_phase(audit::SessionPhase::kConnecting);
  if (obs_) {
    obs_->failovers.add();
    obs_instant(obs_->failover_name, now, static_cast<double>(failover_count_));
  }
  send_play();
}

void StreamClient::handle_datagram(std::span<const std::uint8_t> payload, Endpoint from,
                                   SimTime now) {
  // Multipath subflow 1 arrives from the server's alias address; everything
  // else must come from the active server.
  const bool from_alias = multipath_ && !multipath_->stopped &&
                          from.ip == config_.multipath.server_alias &&
                          from.port == server_.port;
  if (from.ip != server_.ip && !from_alias) return;
  if (auto ctrl = ControlMessage::decode(payload)) {
    if (ctrl->type == ControlType::kPlayOk) {
      play_ok_received_ = true;
      on_session_established(now);
    }
    return;
  }
  if (repair_ && repair_->decoder) {
    if (auto parity = ParityHeader::decode(payload)) {
      on_parity(*parity, payload.size(), now);
      return;
    }
  }
  std::size_t media_len = 0;
  if (auto header = DataHeader::decode(payload, media_len)) {
    on_data(*header, media_len, now);
  }
}

void StreamClient::on_parity(const ParityHeader& header, std::size_t wire_len,
                             SimTime now) {
  if (stream_dead_) return;
  unreachable_streak_ = 0;  // parity is live traffic from the server too
  if (!current_server_answered_) on_session_established(now);
  last_data_ = now;
  ++repair_->parity_packets;
  repair_->parity_bytes += wire_len;
  if (auto recovered = repair_->decoder->on_parity(header))
    accept_recovered(*recovered, now);
}

void StreamClient::register_gaps(std::uint64_t from_seq, std::uint64_t to_seq,
                                 SimTime now) {
  // Bound the registry: a jump wider than the server's retransmission window
  // is unrepairable history (e.g. rejoining after a long outage).
  constexpr std::uint64_t kMaxTracked = 4096;
  for (std::uint64_t seq = from_seq; seq < to_seq; ++seq) {
    if (repair_->missing_since.size() >= kMaxTracked) break;
    const auto seq32 = static_cast<std::uint32_t>(seq);
    repair_->missing_since.emplace(seq32, now);
    if (config_.repair.nack) repair_->nack.note_missing(seq32, now);
  }
  if (config_.repair.nack) schedule_nack_timer();
}

void StreamClient::record_repair_latency(std::uint32_t seq, SimTime now) {
  Duration latency = Duration::zero();
  if (const auto it = repair_->missing_since.find(seq);
      it != repair_->missing_since.end()) {
    latency = now - it->second;
    repair_->missing_since.erase(it);
  }
  repair_->latencies.push_back(latency);
  if (obs_) {
    obs_->recovered.add();
    obs_->repair_latency.record(latency.to_millis());
    obs_instant(obs_->recovered_name, now, static_cast<double>(seq));
  }
}

void StreamClient::accept_recovered(const RecoveredPacket& packet, SimTime now) {
  if (stream_dead_) return;
  if (seq_seen_.covers(packet.seq, std::uint64_t{packet.seq} + 1)) return;
  seq_seen_.insert(packet.seq, std::uint64_t{packet.seq} + 1);
  if (!any_seq_seen_ || packet.seq > max_seq_seen_) {
    max_seq_seen_ = packet.seq;
    any_seq_seen_ = true;
  }
  if (packet.flags & kFlagEndOfStream) eos_received_ = true;
  coverage_.insert(packet.media_offset, packet.media_offset + packet.media_len);

  ++repair_->recovered_by_fec;
  record_repair_latency(packet.seq, now);
  if (config_.repair.nack) {
    repair_->nack.note_arrival(packet.seq);
    schedule_nack_timer();
  }

  // The reconstruction flows to the application exactly like a received
  // datagram (batched on MediaPlayer, immediate on RealPlayer) — recovered
  // packets are a subset of received packets, as the paper's trackers count
  // them. Wire-byte accounting is untouched: nothing arrived on the wire.
  PacketEvent ev;
  ev.network_time = now;
  ev.seq = packet.seq;
  ev.media_offset = packet.media_offset;
  ev.media_len = packet.media_len;
  ev.flags = packet.flags;
  route_to_app(ev, now);

  if (!playout_start_ && first_data_) {
    const Duration preroll = config_.kind == PlayerKind::kMediaPlayer
                                 ? config_.wm.preroll
                                 : config_.rm.preroll;
    begin_playout(*first_data_ + preroll);
  }
}

void StreamClient::schedule_nack_timer() {
  repair_->nack_timer.cancel();
  const auto next = repair_->nack.next_deadline();
  if (!next || stream_dead_ || session_abandoned_) return;
  repair_->nack_timer = host_.loop().schedule_at(*next, [this] { on_nack_timer(); },
                                                 obs::EventCategory::kControl);
}

void StreamClient::on_nack_timer() {
  if (stream_dead_ || session_abandoned_) return;
  const SimTime now = host_.loop().now();
  const auto due = repair_->nack.due(now);
  if (obs_) {
    const std::uint64_t suppressed = repair_->nack.suppressed();
    if (suppressed > obs_->nack_suppressed_synced) {
      obs_->nack_suppressed.add(suppressed - obs_->nack_suppressed_synced);
      obs_->nack_suppressed_synced = suppressed;
    }
  }
  if (!due.empty()) {
    for (const ControlMessage& msg : make_nack_messages(clip_.info().id(), due)) {
      const auto bytes = msg.encode();
      host_.udp_send(port_, server_, bytes);
      ++repair_->nacks_sent;
      if (obs_) obs_->nacks.add();
    }
  }
  schedule_nack_timer();
}

void StreamClient::on_data(const DataHeader& header, std::size_t media_len, SimTime now) {
  if (stream_dead_) return;  // the watchdog already tore the session down
  unreachable_streak_ = 0;   // data disproves an unreachable path
  if (!first_data_) {
    first_data_ = now;
    on_session_established(now);
    if (config_.scaling.enabled && !report_timer_armed_) {
      report_timer_armed_ = true;
      report_window_max_seq_ = header.seq;
      host_.loop().post_in(config_.scaling.report_interval,
                           [this] { send_receiver_report(); },
                               obs::EventCategory::kControl);
    }
  } else if (!current_server_answered_) {
    // First data from a mirror after a failover whose PLAY-OK was lost.
    on_session_established(now);
  }
  last_data_ = now;
  const std::size_t wire_len =
      kDataHeaderSize + media_len +
      ((header.flags & kFlagMultipath) != 0 ? kMultipathExtensionSize : 0);
  wire_media_bytes_ += wire_len;
  if (obs_) obs_goodput(wire_len, now);
  if (multipath_ && (header.flags & kFlagMultipath) != 0)
    note_subflow_arrival(header, media_len, now);

  const bool duplicate = seq_seen_.covers(header.seq, std::uint64_t{header.seq} + 1);
  if (duplicate) {
    // Late originals of already-repaired sequences land here, so a repair
    // never double-delivers media to the application.
    ++duplicate_packets_;
  } else {
    seq_seen_.insert(header.seq, std::uint64_t{header.seq} + 1);
  }

  if (repair_) {
    if (header.flags & kFlagRetransmit) {
      ++repair_->retx_packets;
      repair_->retx_bytes += kDataHeaderSize + media_len;
    }
    if (!duplicate) {
      // A forward jump over unseen sequence numbers is the gap detector:
      // everything skipped becomes a repair candidate (FEC latency anchor
      // and, when enabled, a pending NACK).
      if (any_seq_seen_ && header.seq > max_seq_seen_ + 1)
        register_gaps(max_seq_seen_ + 1, header.seq, now);
      else if (!any_seq_seen_ && header.seq > 0)
        register_gaps(0, header.seq, now);

      if (header.flags & kFlagRetransmit) {
        // A retransmission filling a gap is a repair; count it and its
        // gap-to-fill latency.
        ++repair_->recovered_by_retx;
        record_repair_latency(header.seq, now);
      } else {
        // A late natural arrival closes the gap without being a repair.
        repair_->missing_since.erase(header.seq);
      }
      if (config_.repair.nack) {
        repair_->nack.note_arrival(header.seq);
        schedule_nack_timer();
      }
      if (repair_->decoder) {
        // Strip the retransmit and multipath bits before the XOR: the
        // server's encoder was fed the canonical (pre-striping) flags.
        const auto fec_flags = static_cast<std::uint8_t>(
            header.flags & ~(kFlagRetransmit | kFlagMultipath));
        if (auto recovered = repair_->decoder->on_data(
                header.seq, header.media_offset,
                static_cast<std::uint32_t>(media_len), fec_flags))
          accept_recovered(*recovered, now);
      }
    }
    if (obs_) {
      const std::uint64_t suppressed = repair_->nack.suppressed();
      if (suppressed > obs_->nack_suppressed_synced) {
        obs_->nack_suppressed.add(suppressed - obs_->nack_suppressed_synced);
        obs_->nack_suppressed_synced = suppressed;
      }
    }
  }

  if (!any_seq_seen_ || header.seq > max_seq_seen_) {
    max_seq_seen_ = header.seq;
    any_seq_seen_ = true;
  }
  if (header.flags & kFlagEndOfStream) eos_received_ = true;

  coverage_.insert(header.media_offset, header.media_offset + media_len);

  PacketEvent ev;
  ev.network_time = now;
  ev.seq = header.seq;
  ev.media_offset = header.media_offset;
  ev.media_len = media_len;
  ev.flags = header.flags;
  // Duplicates flow to the application too, exactly as before multipath:
  // the app layer's coverage accounting is idempotent.
  route_to_app(ev, now);

  if (!playout_start_) {
    const Duration preroll = config_.kind == PlayerKind::kMediaPlayer
                                 ? config_.wm.preroll
                                 : config_.rm.preroll;
    begin_playout(*first_data_ + preroll);
  }
}

void StreamClient::send_receiver_report() {
  // Loss over the report window, from the sequence-number advance vs the
  // datagrams actually received.
  const std::uint64_t expected =
      max_seq_seen_ > report_window_max_seq_ ? max_seq_seen_ - report_window_max_seq_ : 0;
  const std::uint64_t received_total = packets_.size() + pending_app_.size();
  const std::uint64_t received_window =
      received_total > report_window_received_ ? received_total - report_window_received_
                                               : 0;
  double loss = 0.0;
  if (expected > 0 && received_window < expected)
    loss = 1.0 - static_cast<double>(received_window) / static_cast<double>(expected);
  report_window_max_seq_ = max_seq_seen_;
  report_window_received_ = received_total;

  ControlMessage report{ControlType::kReceiverReport, clip_.info().id()};
  report.value = static_cast<std::uint16_t>(std::min(1000.0, loss * 1000.0 + 0.5));
  const auto bytes = report.encode();
  host_.udp_send(port_, server_, bytes);
  ++reports_sent_;

  if (!eos_received_ && !stream_dead_) {
    host_.loop().post_in(config_.scaling.report_interval,
                         [this] { send_receiver_report(); },
                             obs::EventCategory::kControl);
  }
}

void StreamClient::deliver_app(PacketEvent ev, SimTime now) {
  if (config_.kind == PlayerKind::kMediaPlayer) {
    // Interleaving: the engine releases packets to the application in
    // batches once per app_batch_interval (Figure 12).
    pending_app_.push_back(ev);
    if (!batch_timer_armed_) {
      batch_timer_armed_ = true;
      host_.loop().post_in(config_.wm.app_batch_interval,
                           [this] { release_app_batch(); },
                           obs::EventCategory::kTimer);
    }
  } else {
    ev.app_time = now;
    packets_.push_back(ev);
    app_coverage_.insert(ev.media_offset, ev.media_offset + ev.media_len);
  }
}

void StreamClient::route_to_app(const PacketEvent& ev, SimTime now) {
  if (!multipath_ || multipath_->stopped) {
    deliver_app(ev, now);
    return;
  }
  // Multipath: the join buffer restores global sequence order across the
  // interleaved subflow arrivals before anything reaches the application.
  JoinPacket packet;
  packet.seq = ev.seq;
  packet.media_offset = ev.media_offset;
  packet.media_len = static_cast<std::uint32_t>(ev.media_len);
  packet.flags = ev.flags;
  packet.arrival = ev.network_time;
  auto released = multipath_->join.insert(packet, now);
  if (eos_received_) {
    // The stream is over: nothing lower-sequenced is still in flight worth
    // waiting for, so drain the buffer behind the final packet.
    for (const JoinPacket& held : multipath_->join.flush()) released.push_back(held);
  }
  for (const JoinPacket& out : released) {
    PacketEvent app_ev;
    app_ev.network_time = out.arrival;
    app_ev.seq = out.seq;
    app_ev.media_offset = out.media_offset;
    app_ev.media_len = out.media_len;
    app_ev.flags = out.flags;
    deliver_app(app_ev, now);
  }
}

void StreamClient::note_subflow_arrival(const DataHeader& header, std::size_t media_len,
                                        SimTime now) {
  const int id = header.subflow_id < 2 ? header.subflow_id : 1;
  SubflowRx& rx = multipath_->rx[id];
  ++rx.packets_received;
  rx.media_bytes += media_len;
  if (!rx.any || header.subflow_seq > rx.max_subflow_seq)
    rx.max_subflow_seq = header.subflow_seq;
  rx.any = true;
  rx.last_arrival = now;
  if (!multipath_->report_timer_armed && !multipath_->stopped) {
    multipath_->report_timer_armed = true;
    multipath_->report_timer =
        host_.loop().schedule_in(config_.multipath.report_interval,
                                 [this] { send_path_reports(); },
                                 obs::EventCategory::kControl);
  }
}

void StreamClient::send_path_reports() {
  multipath_->report_timer_armed = false;
  if (multipath_->stopped || eos_received_ || stream_dead_ || session_abandoned_)
    return;
  // One report per subflow that has ever delivered data, each sent over the
  // path it describes — so a dead path's report dies with it and the
  // server-side silence strikes do their job.
  for (int id = 0; id < 2; ++id) {
    const SubflowRx& rx = multipath_->rx[id];
    if (!rx.any) continue;
    ControlMessage report{ControlType::kPathReport, clip_.info().id()};
    report.value = static_cast<std::uint16_t>(id);
    report.offset = (std::uint64_t{rx.max_subflow_seq} << 32) |
                    (rx.packets_received & 0xFFFFFFFFull);
    const auto bytes = report.encode();
    if (id == 0)
      host_.udp_send(port_, server_, bytes);
    else
      host_.udp_send_from(config_.multipath.client_alias, port_,
                          Endpoint{config_.multipath.server_alias, server_.port},
                          bytes);
    ++multipath_->reports_sent;
    if (obs_) obs_->path_reports.add();
  }
  multipath_->report_timer_armed = true;
  multipath_->report_timer =
      host_.loop().schedule_in(config_.multipath.report_interval,
                               [this] { send_path_reports(); },
                               obs::EventCategory::kControl);
}

void StreamClient::attribute_stall() {
  if (!multipath_) return;
  // The responsible path is the stalest one: the subflow whose most recent
  // delivery is oldest is the one starving the join buffer.
  int victim = -1;
  for (int id = 0; id < 2; ++id) {
    const SubflowRx& rx = multipath_->rx[id];
    if (!rx.any) continue;
    if (victim < 0 ||
        rx.last_arrival < multipath_->rx[static_cast<std::size_t>(victim)].last_arrival)
      victim = id;
  }
  if (victim >= 0)
    ++multipath_->rx[static_cast<std::size_t>(victim)].stall_attributions;
}

std::uint64_t StreamClient::subflow_packets_lost(int id) const {
  if (!multipath_) return 0;
  const SubflowRx& rx = multipath_->rx[static_cast<std::size_t>(id)];
  if (!rx.any) return 0;
  const std::uint64_t expected = std::uint64_t{rx.max_subflow_seq} + 1;
  return expected > rx.packets_received ? expected - rx.packets_received : 0;
}

void StreamClient::release_app_batch() {
  const SimTime now = host_.loop().now();
  while (!pending_app_.empty()) {
    PacketEvent ev = pending_app_.front();
    pending_app_.pop_front();
    ev.app_time = now;
    app_coverage_.insert(ev.media_offset, ev.media_offset + ev.media_len);
    packets_.push_back(ev);
  }
  if (eos_received_ || stream_dead_) {
    batch_timer_armed_ = false;
    return;
  }
  host_.loop().post_in(config_.wm.app_batch_interval, [this] { release_app_batch(); },
                           obs::EventCategory::kTimer);
}

void StreamClient::begin_playout(SimTime when) {
  playout_start_ = when;
  if (config_.rebuffering) {
    // Stall-capable playout walks frames one at a time so stalls can shift
    // every later deadline.
    schedule_frame(0);
    return;
  }
  // Drop-late playout: schedule every frame's decode deadline up front; the
  // event loop keeps them ordered and the per-frame closure checks data
  // availability.
  for (std::size_t i = 0; i < clip_.frames().size(); ++i) {
    const SimTime deadline = when + clip_.frames()[i].pts;
    host_.loop().post_at(deadline, [this, i] { decode_frame(i); },
                             obs::EventCategory::kPlayout);
  }
}

void StreamClient::schedule_frame(std::size_t index) {
  if (index >= clip_.frames().size()) {
    playback_finished_ = true;
    playback_end_ = host_.loop().now();
    if (phase_ == audit::SessionPhase::kEstablished)
      enter_phase(audit::SessionPhase::kCompleted);
    return;
  }
  const SimTime deadline = *playout_start_ + playout_shift_ + clip_.frames()[index].pts;
  current_stall_ = Duration::zero();
  host_.loop().post_at(deadline, [this, index] { decode_frame_rebuffering(index); },
                           obs::EventCategory::kPlayout);
}

void StreamClient::abandon_remaining_frames(std::size_t from_index) {
  // Stream declared dead mid-playout: the remaining frames can never be
  // decoded, so account them as dropped at once instead of stalling
  // max_stall on each — this is what lets the event loop drain promptly
  // after a fatal outage.
  frames_dropped_ +=
      static_cast<std::uint32_t>(clip_.frames().size() - from_index);
  playback_end_ = host_.loop().now();
}

void StreamClient::close_stall_interval(SimTime now) {
  if (stall_start_) {
    stalls_.emplace_back(*stall_start_, now);
    stall_start_.reset();
  }
}

void StreamClient::decode_frame_rebuffering(std::size_t index) {
  if (stream_dead_) {
    obs_end_rebuffer(host_.loop().now());
    close_stall_interval(host_.loop().now());
    abandon_remaining_frames(index);
    return;
  }
  const EncodedFrame& frame = clip_.frames()[index];
  const bool ready =
      app_coverage_.covers(frame.byte_offset, frame.byte_offset + frame.bytes);

  if (!ready && current_stall_ < config_.max_stall) {
    // Stall: the picture freezes while the buffer refills.
    if (current_stall_ == Duration::zero()) {
      ++rebuffer_events_;
      stall_start_ = host_.loop().now();
      attribute_stall();
      if (obs_) {
        obs_->rebuffers.add();
        if constexpr (obs::kObsCompiledIn) {
          if (obs_->obs->tracing())
            obs_->rebuffer_span = obs_->obs->tracer().begin_span(
                obs_->rebuffer_name, obs_->track, host_.loop().now());
        }
      }
    }
    const Duration poll = Duration::millis(100);
    current_stall_ += poll;
    playout_shift_ += poll;
    total_stall_time_ += poll;
    host_.loop().post_in(poll, [this, index] { decode_frame_rebuffering(index); },
                             obs::EventCategory::kPlayout);
    return;
  }
  obs_end_rebuffer(host_.loop().now());
  close_stall_interval(host_.loop().now());

  FrameEvent ev;
  ev.time = host_.loop().now();
  ev.frame_index = frame.index;
  ev.rendered = ready;
  if (ready)
    ++frames_rendered_;
  else
    ++frames_dropped_;  // abandoned after max_stall
  frame_events_.push_back(ev);
  schedule_frame(index + 1);
}

void StreamClient::decode_frame(std::size_t index) {
  const EncodedFrame& frame = clip_.frames()[index];
  FrameEvent ev;
  ev.time = host_.loop().now();
  ev.frame_index = frame.index;
  // A dead session renders nothing more, even from buffered data.
  ev.rendered = !stream_dead_ &&
                app_coverage_.covers(frame.byte_offset,
                                     frame.byte_offset + frame.bytes);
  if (ev.rendered)
    ++frames_rendered_;
  else
    ++frames_dropped_;
  frame_events_.push_back(ev);

  if (index + 1 == clip_.frames().size()) {
    playback_finished_ = true;
    playback_end_ = host_.loop().now();
    // Pre-scheduled drop-late deadlines keep firing after a watchdog death,
    // so the playout timeline can end in a dead session; only a live one
    // transitions to kCompleted.
    if (phase_ == audit::SessionPhase::kEstablished)
      enter_phase(audit::SessionPhase::kCompleted);
  }
}

std::uint64_t StreamClient::packets_lost() const {
  // Count distinct missing sequences, so duplicated or reordered datagrams
  // never inflate (or deflate) the loss figure. Sequence epochs finished by
  // earlier failovers contribute their accumulated losses.
  std::uint64_t current = 0;
  if (any_seq_seen_) {
    const std::uint64_t expected = max_seq_seen_ + 1;
    const std::uint64_t unique = seq_seen_.total_covered();
    current = expected > unique ? expected - unique : 0;
  }
  return lost_prior_epochs_ + current;
}

BitRate StreamClient::average_playback_rate() const {
  if (!first_data_ || !last_data_ || *last_data_ <= *first_data_) return BitRate::zero();
  const double secs = (*last_data_ - *first_data_).to_seconds();
  const double bits = static_cast<double>(wire_media_bytes_) * 8.0;
  return BitRate(static_cast<std::int64_t>(bits / secs + 0.5));
}

}  // namespace streamlab
