#include "players/repair.hpp"

#include <algorithm>

namespace streamlab {

// --- FecBlockEncoder ---

FecBlockEncoder::FecBlockEncoder(int k, int stride)
    : k_(std::clamp(k, 1, 64)), stride_(std::max(stride, 1)) {}

ParityOut FecBlockEncoder::close_row(Row& row) const {
  ParityOut out;
  out.header.k = static_cast<std::uint8_t>(row.count);
  out.header.stride = static_cast<std::uint8_t>(stride_);
  out.header.block_base = row.base;
  out.header.xor_media_offset = row.xor_offset;
  out.header.xor_media_len = row.xor_len;
  out.header.xor_flags = row.xor_flags;
  out.pad_len = row.max_len;
  return out;
}

std::vector<ParityOut> FecBlockEncoder::feed(std::uint32_t seq,
                                             std::uint64_t media_offset,
                                             std::uint32_t media_len,
                                             std::uint8_t flags) {
  std::vector<ParityOut> out;
  const std::uint32_t group = static_cast<std::uint32_t>(k_ * stride_);
  const std::uint32_t matrix_start = seq / group * group;
  const std::uint32_t base = matrix_start + (seq - matrix_start) % stride_;

  Row& row = rows_[base];
  if (row.count == 0) row.base = base;
  ++row.count;
  row.xor_offset ^= media_offset;
  row.xor_len ^= media_len;
  row.xor_flags ^= flags;
  row.max_len = std::max(row.max_len, static_cast<std::size_t>(media_len));
  if (row.count >= k_) {
    out.push_back(close_row(row));
    rows_.erase(base);
  }
  return out;
}

std::vector<ParityOut> FecBlockEncoder::flush() {
  std::vector<ParityOut> out;
  for (auto& [base, row] : rows_)
    if (row.count > 0) out.push_back(close_row(row));
  rows_.clear();
  return out;
}

// --- FecDecoder ---

FecDecoder::FecDecoder(int k, int stride)
    : k_(std::clamp(k, 1, 64)), stride_(std::max(stride, 1)) {}

std::uint32_t FecDecoder::row_base(std::uint32_t seq) const {
  const std::uint32_t group = static_cast<std::uint32_t>(k_ * stride_);
  const std::uint32_t matrix_start = seq / group * group;
  return matrix_start + (seq - matrix_start) % stride_;
}

std::optional<RecoveredPacket> FecDecoder::try_recover(std::uint32_t base, Row& row) {
  if (!row.parity) return std::nullopt;
  const int covered = row.parity->k;
  if (row.count >= covered) {
    // Every covered packet arrived; the parity is redundant.
    rows_.erase(base);
    return std::nullopt;
  }
  if (row.count != covered - 1) return std::nullopt;
  // Exactly one hole: find the unset mask bit among the covered positions.
  int missing = -1;
  for (int j = 0; j < covered; ++j) {
    if ((row.mask & (std::uint64_t{1} << j)) == 0) {
      missing = j;
      break;
    }
  }
  if (missing < 0) {
    rows_.erase(base);
    return std::nullopt;
  }
  RecoveredPacket packet;
  packet.seq = base + static_cast<std::uint32_t>(stride_ * missing);
  packet.media_offset = row.parity->xor_media_offset ^ row.xor_offset;
  packet.media_len = row.parity->xor_media_len ^ row.xor_len;
  packet.flags = row.parity->xor_flags ^ row.xor_flags;
  rows_.erase(base);
  return packet;
}

std::optional<RecoveredPacket> FecDecoder::on_data(std::uint32_t seq,
                                                   std::uint64_t media_offset,
                                                   std::uint32_t media_len,
                                                   std::uint8_t flags) {
  const std::uint32_t base = row_base(seq);
  const std::uint32_t j = (seq - base) / static_cast<std::uint32_t>(stride_);
  if (j >= 64) return std::nullopt;
  Row& row = rows_[base];
  const std::uint64_t bit = std::uint64_t{1} << j;
  if (row.mask & bit) return std::nullopt;  // defensive: duplicate feed
  row.mask |= bit;
  ++row.count;
  row.xor_offset ^= media_offset;
  row.xor_len ^= media_len;
  row.xor_flags ^= flags;
  auto recovered = try_recover(base, row);
  if (!recovered && !rows_.empty() && rows_.size() > 1024) {
    // Bound memory on pathologically sparse streams: forget the oldest row.
    rows_.erase(rows_.begin());
  }
  return recovered;
}

std::optional<RecoveredPacket> FecDecoder::on_parity(const ParityHeader& header) {
  if (header.k == 0 || header.k > 64) return std::nullopt;
  Row& row = rows_[header.block_base];
  row.parity = header;
  return try_recover(header.block_base, row);
}

void FecDecoder::reset() { rows_.clear(); }

// --- RetransmitBuffer ---

RetransmitBuffer::RetransmitBuffer(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 1)) {}

void RetransmitBuffer::store(std::uint32_t seq, std::uint64_t media_offset,
                             std::uint32_t media_len, std::uint8_t flags) {
  Slot& slot = slots_[seq % slots_.size()];
  slot.valid = true;
  slot.packet = RecoveredPacket{seq, media_offset, media_len, flags};
}

std::optional<RecoveredPacket> RetransmitBuffer::lookup(std::uint32_t seq) const {
  const Slot& slot = slots_[seq % slots_.size()];
  if (!slot.valid || slot.packet.seq != seq) return std::nullopt;
  return slot.packet;
}

// --- TokenBucketPacer ---

TokenBucketPacer::TokenBucketPacer(BitRate rate, std::size_t burst_bytes)
    : rate_(rate),
      capacity_(static_cast<std::int64_t>(std::max<std::size_t>(burst_bytes, 1))),
      tokens_(capacity_) {}

bool TokenBucketPacer::try_consume(SimTime now, std::size_t bytes) {
  if (!primed_) {
    primed_ = true;
    last_refill_ = now;
  } else if (now > last_refill_) {
    tokens_ = std::min(capacity_, tokens_ + rate_.bytes_in(now - last_refill_));
    last_refill_ = now;
  }
  const auto need = static_cast<std::int64_t>(bytes);
  if (tokens_ < need) return false;
  tokens_ -= need;
  return true;
}

// --- NackTracker ---

NackTracker::NackTracker(const RepairLayerConfig& config) : config_(config) {}

void NackTracker::set_rtt(Duration rtt) {
  if (rtt > Duration::zero()) rtt_ = rtt;
}

Duration NackTracker::delay() const {
  const Duration scaled = rtt_.scaled(config_.nack_rtt_multiplier);
  return std::clamp(scaled, config_.nack_min_delay, config_.nack_max_delay);
}

void NackTracker::note_missing(std::uint32_t seq, SimTime now) {
  if (pending_.contains(seq)) return;
  Pending entry{now + delay(), 0};
  entry.armed = config_.nack_reorder_tolerance <= 0;
  pending_.emplace(seq, entry);
}

void NackTracker::note_arrival(std::uint32_t seq) {
  auto it = pending_.find(seq);
  if (it != pending_.end()) {
    if (!it->second.armed) ++suppressed_;
    pending_.erase(it);
  }
  if (config_.nack_reorder_tolerance <= 0 || pending_.empty()) return;
  // A higher-sequenced arrival is evidence the stream moved past every
  // still-open gap below it: advance their arming windows.
  const auto end = pending_.lower_bound(seq);
  for (auto jt = pending_.begin(); jt != end; ++jt) {
    if (jt->second.armed) continue;
    if (++jt->second.later_arrivals >= config_.nack_reorder_tolerance)
      jt->second.armed = true;
  }
}

std::vector<std::uint32_t> NackTracker::due(SimTime now) {
  std::vector<std::uint32_t> out;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.deadline > now) {
      ++it;
      continue;
    }
    if (!it->second.armed) {
      // The reorder-tolerance window was still open when the timer fired:
      // hold the NACK one extra delay (the join buffer may fill the gap on
      // its own), then treat it as a real loss.
      ++suppressed_;
      it->second.armed = true;
      it->second.deadline = now + delay();
      ++it;
      continue;
    }
    if (it->second.retries >= config_.nack_max_retries) {
      ++abandoned_;
      it = pending_.erase(it);
      continue;
    }
    out.push_back(it->first);
    ++it->second.retries;
    it->second.deadline = now + delay();
    ++it;
  }
  return out;
}

std::optional<SimTime> NackTracker::next_deadline() const {
  std::optional<SimTime> earliest;
  for (const auto& [seq, p] : pending_)
    if (!earliest || p.deadline < *earliest) earliest = p.deadline;
  return earliest;
}

// --- NACK message packing ---

std::vector<ControlMessage> make_nack_messages(const std::string& clip_id,
                                               const std::vector<std::uint32_t>& seqs) {
  std::vector<ControlMessage> out;
  std::size_t i = 0;
  while (i < seqs.size()) {
    ControlMessage msg{ControlType::kNack, clip_id};
    const std::uint32_t pid = seqs[i++];
    msg.offset = pid;
    std::uint16_t blp = 0;
    while (i < seqs.size() && seqs[i] > pid && seqs[i] - pid <= 16) {
      blp = static_cast<std::uint16_t>(blp | (1u << (seqs[i] - pid - 1)));
      ++i;
    }
    msg.value = blp;
    out.push_back(std::move(msg));
  }
  return out;
}

std::vector<std::uint32_t> nack_requested_seqs(const ControlMessage& msg) {
  std::vector<std::uint32_t> out;
  const auto pid = static_cast<std::uint32_t>(msg.offset);
  out.push_back(pid);
  for (int j = 0; j < 16; ++j)
    if (msg.value & (1u << j)) out.push_back(pid + 1 + static_cast<std::uint32_t>(j));
  return out;
}

}  // namespace streamlab
