// Streaming client models: the player engines MediaTracker and RealTracker
// wrap. The client requests a clip, receives the datagram stream, tracks
// media byte coverage, runs the playout engine (preroll, per-frame decode
// deadlines) and — for the MediaPlayer model — batches application-layer
// packet delivery (the interleaving of Figure 12).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "media/encoder.hpp"
#include "players/behavior.hpp"
#include "players/multipath.hpp"
#include "players/protocol.hpp"
#include "players/repair.hpp"
#include "players/scaling.hpp"
#include "sim/audit.hpp"
#include "sim/host.hpp"
#include "util/interval_set.hpp"

namespace streamlab {

/// One received data packet, with both timestamp layers the paper compares
/// in Figure 12: when the OS delivered it and when the application saw it.
struct PacketEvent {
  SimTime network_time;      ///< UDP delivery to the player engine
  SimTime app_time;          ///< release to the application layer
  std::uint32_t seq = 0;
  std::uint64_t media_offset = 0;
  std::size_t media_len = 0;
  std::uint8_t flags = 0;
};

/// A frame playout decision made by the decode loop.
struct FrameEvent {
  SimTime time;
  std::uint32_t frame_index = 0;
  bool rendered = false;  ///< false = data missed its decode deadline
};

/// Session-establishment and liveness policy: how the client survives a
/// lossy control handshake and detects a dead stream instead of waiting
/// forever (the robustness the fault-injection layer exercises).
struct SessionRecoveryConfig {
  /// Retransmit the PLAY request until answered (PLAY-OK or data).
  bool play_retry = true;
  /// Timeout before the first retransmission; doubles via `backoff` each
  /// further attempt (exponential backoff).
  Duration play_timeout = Duration::millis(500);
  double backoff = 2.0;
  /// Total PLAY transmissions before the session is abandoned.
  int max_play_attempts = 5;
  /// Data-inactivity watchdog, armed at session establishment (PLAY-OK or
  /// first data): after this much silence (no data, no end-of-stream) the
  /// stream is declared dead. zero() disables the watchdog (the default,
  /// preserving the unguarded baseline behaviour).
  Duration inactivity_timeout = Duration::zero();
};

/// Mirror failover policy: when the active server's path fails — the
/// inactivity watchdog trips, PLAY retries exhaust, or routers on the path
/// report Destination Unreachable — the session fails over to the next
/// mirror, resuming at the current contiguous media position instead of
/// dying. Empty mirrors (the default) keeps the single-server behaviour.
struct FailoverConfig {
  /// Mirror servers tried in order; each failover advances to the next.
  std::vector<Endpoint> mirrors;
  /// Consecutive Destination Unreachable packets about the active server
  /// (with no data in between) that trigger a failover — the fast-fail
  /// signal, ahead of the inactivity watchdog. <= 0 disables the ICMP
  /// trigger (the watchdog/PLAY-retry triggers remain).
  int icmp_unreachable_threshold = 3;
};

class StreamClient {
 public:
  struct Config {
    PlayerKind kind = PlayerKind::kMediaPlayer;
    WmBehavior wm;
    RmBehavior rm;
    std::uint16_t local_port = 0;  ///< 0 = player default port
    /// When enabled, the client sends periodic receiver reports (loss
    /// feedback) so a scaling-enabled server can adapt (Section VI).
    MediaScalingPolicy scaling;
    /// Playout policy for late data. false (the study's analysis model):
    /// a frame that misses its deadline is dropped and playout continues.
    /// true (the products' actual behaviour): playout stalls until the
    /// frame's data arrives, shifting all later deadlines — the rebuffering
    /// the delay buffer exists to avoid (Section 3.F).
    bool rebuffering = false;
    /// Longest single stall before the frame is abandoned as dropped.
    Duration max_stall = Duration::seconds(10);
    /// Handshake retry / liveness policy.
    SessionRecoveryConfig recovery;
    /// Mirror-server failover policy (empty = no failover).
    FailoverConfig failover;
    /// Loss repair policy (FEC decode + NACK retransmission requests). Must
    /// match the server's enable_repair configuration; the default leaves
    /// repair off and the client byte-identical to the unrepaired baseline.
    RepairLayerConfig repair;
    /// Multipath striping policy; must match the server's enable_multipath
    /// configuration (alias addresses included). Disabled by default.
    MultipathConfig multipath;
  };

  /// The client needs the clip's frame table (in the real products this
  /// metadata arrives in the stream header exchange).
  StreamClient(Host& host, const EncodedClip& clip, Endpoint server, Config config);
  ~StreamClient();
  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;

  /// Sends the PLAY request now (and arms the retry timer when enabled).
  void start();

  // --- Results (valid once the event loop has drained) ---
  const std::vector<PacketEvent>& packets() const { return packets_; }
  const std::vector<FrameEvent>& frame_events() const { return frame_events_; }
  std::uint32_t frames_rendered() const { return frames_rendered_; }
  std::uint32_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t media_bytes_received() const { return coverage_.total_covered(); }
  /// Datagrams lost end-to-end: sequence numbers never received in any copy.
  /// Duplicate and reordered deliveries are tolerated — the count is
  /// (max seq seen + 1) minus the number of *distinct* sequences received.
  std::uint64_t packets_lost() const;
  /// Datagrams received carrying a sequence number already seen.
  std::uint64_t duplicate_packets() const { return duplicate_packets_; }
  std::uint64_t packets_received() const { return packets_.size(); }
  /// Application payload bytes received so far (stream headers included).
  std::uint64_t wire_bytes_received() const { return wire_media_bytes_; }

  bool play_ok_received() const { return play_ok_received_; }
  bool end_of_stream() const { return eos_received_; }
  bool playback_started() const { return playout_start_.has_value(); }
  bool playback_finished() const { return playback_finished_; }

  // --- Session recovery state ---
  /// PLAY requests sent (1 when the first succeeded without retries).
  std::uint32_t play_attempts() const { return play_attempts_; }
  /// True once the server answered (PLAY-OK or first data packet).
  bool session_established() const { return play_ok_received_ || first_data_.has_value(); }
  /// Retries exhausted without any server response.
  bool session_abandoned() const { return session_abandoned_; }
  /// The inactivity watchdog declared the stream dead mid-session.
  bool stream_dead() const { return stream_dead_; }
  /// When the session ended abnormally (abandoned or declared dead).
  std::optional<SimTime> session_failure_time() const { return failure_time_; }
  /// When the server first answered.
  std::optional<SimTime> session_established_time() const { return established_time_; }

  /// Lifecycle phase as reported to the invariant auditor (kIdle ->
  /// kConnecting -> {kEstablished, kAbandoned}; kEstablished ->
  /// {kCompleted, kDead, kConnecting} — the last is mirror failover).
  audit::SessionPhase session_phase() const { return phase_; }

  // --- Failover state ---
  /// Mirror failovers committed (0 = the original server carried the whole
  /// session).
  std::uint32_t failover_count() const { return failover_count_; }
  /// Destination Unreachable packets observed about the active server.
  std::uint64_t icmp_unreachables() const { return icmp_unreachables_; }
  /// The server the session is currently (or was last) bound to.
  Endpoint active_server() const { return server_; }
  /// Media position the most recent failover PLAY asked the mirror to
  /// resume from (0 before any failover).
  std::uint64_t resume_offset() const { return resume_offset_; }
  /// Closed [start, end) rebuffering stall intervals, in playout order —
  /// what lets a campaign attribute stall time to fault episodes that
  /// overlap them.
  const std::vector<std::pair<SimTime, SimTime>>& stall_intervals() const {
    return stalls_;
  }

  // --- Loss repair state (all zero when Config::repair is disabled) ---
  /// App packets the repair layer delivered that the network lost: FEC
  /// reconstructions plus NACK-triggered retransmissions that filled a gap.
  std::uint64_t packets_recovered() const {
    return repair_ ? repair_->recovered_by_fec + repair_->recovered_by_retx : 0;
  }
  std::uint64_t recovered_by_fec() const { return repair_ ? repair_->recovered_by_fec : 0; }
  std::uint64_t recovered_by_retx() const { return repair_ ? repair_->recovered_by_retx : 0; }
  /// NACK messages sent (each carries up to 17 missing sequences).
  std::uint64_t nacks_sent() const { return repair_ ? repair_->nacks_sent : 0; }
  std::uint64_t parity_packets_received() const {
    return repair_ ? repair_->parity_packets : 0;
  }
  /// Wire bytes of parity traffic received (repair bandwidth overhead).
  std::uint64_t parity_wire_bytes() const { return repair_ ? repair_->parity_bytes : 0; }
  /// Wire bytes of retransmitted data received (repair bandwidth overhead).
  std::uint64_t retx_wire_bytes() const { return repair_ ? repair_->retx_bytes : 0; }
  /// Gap-to-repair delay of each recovered packet, in recovery order.
  const std::vector<Duration>& repair_latencies() const {
    static const std::vector<Duration> kEmpty;
    return repair_ ? repair_->latencies : kEmpty;
  }

  // --- Multipath state (all zero when Config::multipath is disabled) ---
  /// Distinct packets received on one subflow (multipath-framed only).
  std::uint64_t subflow_packets_received(int id) const {
    return multipath_ ? multipath_->rx[static_cast<std::size_t>(id)].packets_received : 0;
  }
  /// Per-subflow gap count: sequence numbers the subflow's own space shows
  /// as never delivered on that path (the per-path loss figure).
  std::uint64_t subflow_packets_lost(int id) const;
  /// Media payload bytes delivered by one subflow (per-path goodput basis).
  std::uint64_t subflow_media_bytes(int id) const {
    return multipath_ ? multipath_->rx[static_cast<std::size_t>(id)].media_bytes : 0;
  }
  /// Rebuffer stalls attributed to one subflow (the stalest path when the
  /// stall began).
  std::uint32_t subflow_stall_attributions(int id) const {
    return multipath_ ? multipath_->rx[static_cast<std::size_t>(id)].stall_attributions
                      : 0;
  }
  /// p95 of the join-buffer occupancy (reorder depth the striping produced).
  std::uint32_t reorder_depth_p95() const {
    return multipath_ ? multipath_->join.reorder_depth_p95() : 0;
  }
  std::uint64_t join_duplicates_dropped() const {
    return multipath_ ? multipath_->join.duplicates_dropped() : 0;
  }
  std::uint64_t join_forced_releases() const {
    return multipath_ ? multipath_->join.forced_releases() : 0;
  }
  /// NACKs the reorder-tolerance window suppressed (join jitter absorbed
  /// without a retransmit request).
  std::uint64_t nack_suppressed() const {
    return repair_ ? repair_->nack.suppressed() : 0;
  }
  /// Path reports sent to the server (across all subflows).
  std::uint64_t path_reports_sent() const {
    return multipath_ ? multipath_->reports_sent : 0;
  }

  std::optional<SimTime> first_data_time() const { return first_data_; }
  std::optional<SimTime> last_data_time() const { return last_data_; }
  std::optional<SimTime> playout_start_time() const { return playout_start_; }
  std::optional<SimTime> playback_end_time() const { return playback_end_; }
  /// Rebuffering statistics (always zero when Config::rebuffering is off).
  std::uint32_t rebuffer_events() const { return rebuffer_events_; }
  Duration total_stall_time() const { return total_stall_time_; }

  const EncodedClip& clip() const { return clip_; }
  PlayerKind kind() const { return config_.kind; }
  Host& host() const { return host_; }

  /// Average received data rate over the reception interval — the
  /// "Average Playback Data Rate" of Figure 3.
  BitRate average_playback_rate() const;

 private:
  /// Session-timeline instrumentation, allocated only when the run has an
  /// observability context attached (see obs/obs.hpp).
  struct ObsState {
    obs::Obs* obs = nullptr;
    obs::Counter play_attempts;
    obs::Counter play_retries;
    obs::Counter watchdog_fired;
    obs::Counter rebuffers;
    obs::Counter failovers;
    obs::Counter unreachables;
    std::uint16_t track = 0;  ///< "player.<real|media>" trace lane
    std::uint16_t retry_name = 0;
    std::uint16_t established_name = 0;
    std::uint16_t dead_name = 0;
    std::uint16_t abandoned_name = 0;
    std::uint16_t rebuffer_name = 0;
    std::uint16_t goodput_name = 0;
    obs::Counter recovered;
    obs::Counter nacks;
    obs::Counter nack_suppressed;
    std::uint64_t nack_suppressed_synced = 0;  ///< counter high-water mark
    obs::Counter path_reports;
    obs::Histogram repair_latency;
    std::uint16_t failover_name = 0;
    std::uint16_t unreachable_name = 0;
    std::uint16_t recovered_name = 0;
    std::uint64_t rebuffer_span = 0;  ///< open stall span, 0 when none
    SimTime goodput_window_start;
    std::uint64_t goodput_window_bytes = 0;
  };

  void enter_phase(audit::SessionPhase to);
  void handle_datagram(std::span<const std::uint8_t> payload, Endpoint from, SimTime now);
  void on_data(const DataHeader& header, std::size_t media_len, SimTime now);
  void on_parity(const ParityHeader& header, std::size_t wire_len, SimTime now);
  /// Registers the sequences a forward jump skipped as repair candidates.
  void register_gaps(std::uint64_t from_seq, std::uint64_t to_seq, SimTime now);
  /// Delivers an FEC-reconstructed packet through the normal reception path.
  void accept_recovered(const RecoveredPacket& packet, SimTime now);
  void record_repair_latency(std::uint32_t seq, SimTime now);
  void schedule_nack_timer();
  void on_nack_timer();
  void obs_instant(std::uint16_t name, SimTime now, double value = 0.0);
  void obs_end_rebuffer(SimTime now);
  void obs_goodput(std::size_t bytes, SimTime now);
  void send_play();
  void on_play_timeout();
  void on_session_established(SimTime now);
  void arm_watchdog(Duration delay);
  void on_watchdog();
  void on_icmp(const IcmpHeader& icmp, std::span<const std::uint8_t> payload, SimTime now);
  /// True when another mirror remains to fail over to.
  bool mirror_available() const {
    return next_mirror_ < config_.failover.mirrors.size();
  }
  void failover(SimTime now);
  void close_stall_interval(SimTime now);
  void abandon_remaining_frames(std::size_t from_index);
  void send_receiver_report();
  void release_app_batch();
  void begin_playout(SimTime when);
  void decode_frame(std::size_t index);
  void schedule_frame(std::size_t index);
  void decode_frame_rebuffering(std::size_t index);

  Host& host_;
  const EncodedClip& clip_;
  Endpoint server_;
  Config config_;
  std::uint16_t port_;

  std::vector<PacketEvent> packets_;
  std::deque<PacketEvent> pending_app_;  ///< awaiting batched release (WM)
  bool batch_timer_armed_ = false;

  IntervalSet coverage_;      ///< network-layer byte coverage
  IntervalSet app_coverage_;  ///< application-layer coverage (after release)

  std::optional<SimTime> first_data_;
  std::optional<SimTime> last_data_;
  std::optional<SimTime> playout_start_;
  std::optional<SimTime> playback_end_;
  bool play_ok_received_ = false;
  bool eos_received_ = false;
  bool playback_finished_ = false;

  std::vector<FrameEvent> frame_events_;
  std::uint32_t frames_rendered_ = 0;
  std::uint32_t frames_dropped_ = 0;
  Duration playout_shift_;          ///< accumulated rebuffering stalls
  Duration current_stall_;          ///< stall time of the frame being waited on
  std::uint32_t rebuffer_events_ = 0;
  Duration total_stall_time_;

  std::uint64_t max_seq_seen_ = 0;
  bool any_seq_seen_ = false;
  IntervalSet seq_seen_;                  ///< distinct sequence numbers received
  std::uint64_t duplicate_packets_ = 0;
  std::uint64_t wire_media_bytes_ = 0;  ///< media+header bytes received

  // Session recovery state.
  audit::SessionPhase phase_ = audit::SessionPhase::kIdle;
  std::uint32_t play_attempts_ = 0;
  Duration next_play_timeout_;
  EventHandle play_timer_;
  EventHandle watchdog_timer_;
  bool session_abandoned_ = false;
  bool stream_dead_ = false;
  std::optional<SimTime> failure_time_;
  std::optional<SimTime> established_time_;

  // Failover state. Each failover starts a fresh *epoch* against the next
  // mirror: PLAY attempts, backoff, the answered flag and the sequence space
  // all reset (the mirror numbers from 0), while cumulative results
  // (coverage, packets, losses of finished epochs) carry over.
  std::size_t next_mirror_ = 0;
  std::uint32_t failover_count_ = 0;
  std::uint64_t icmp_unreachables_ = 0;
  int unreachable_streak_ = 0;
  bool current_server_answered_ = false;
  std::uint32_t play_attempts_current_ = 0;  ///< PLAYs sent to the active server
  std::uint64_t resume_offset_ = 0;
  std::uint64_t lost_prior_epochs_ = 0;
  SimTime liveness_anchor_;  ///< (re)establishment time, watchdog baseline
  bool icmp_handler_installed_ = false;

  // Rebuffering stall intervals (closed at stall end / session death).
  std::optional<SimTime> stall_start_;
  std::vector<std::pair<SimTime, SimTime>> stalls_;

  /// Loss-repair state, allocated only when Config::repair enables a
  /// mechanism (the baseline pays nothing, not even the branch targets).
  struct RepairState {
    explicit RepairState(const RepairLayerConfig& config) : nack(config) {
      if (config.fec_enabled())
        decoder = std::make_unique<FecDecoder>(config.effective_k(),
                                               config.effective_stride());
    }
    std::unique_ptr<FecDecoder> decoder;  ///< null when FEC is off
    NackTracker nack;
    /// Gap-notice time per missing sequence, for repair-latency accounting.
    std::map<std::uint32_t, SimTime> missing_since;
    EventHandle nack_timer;
    SimTime play_sent_at;
    bool rtt_known = false;
    std::uint64_t recovered_by_fec = 0;
    std::uint64_t recovered_by_retx = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t parity_packets = 0;
    std::uint64_t parity_bytes = 0;
    std::uint64_t retx_packets = 0;
    std::uint64_t retx_bytes = 0;
    std::vector<Duration> latencies;
  };
  std::unique_ptr<RepairState> repair_;

  /// Per-subflow reception accounting (multipath-framed packets only).
  struct SubflowRx {
    std::uint64_t packets_received = 0;
    std::uint64_t media_bytes = 0;
    std::uint32_t max_subflow_seq = 0;
    bool any = false;
    SimTime last_arrival;
    std::uint32_t stall_attributions = 0;
  };

  /// Multipath reception state, allocated only when Config::multipath is
  /// enabled (single-path sessions pay nothing).
  struct MultipathState {
    explicit MultipathState(const MultipathConfig& c)
        : join(c.join_buffer_packets, c.join_hold) {}
    ReorderJoinBuffer join;
    SubflowRx rx[2];
    EventHandle report_timer;
    bool report_timer_armed = false;
    bool stopped = false;  ///< failover: the mirror epoch is single-path
    std::uint64_t reports_sent = 0;
  };
  std::unique_ptr<MultipathState> multipath_;

  /// Hands one packet to the application layer (batched on MediaPlayer,
  /// immediate on RealPlayer) — the tail every reception path shares.
  void deliver_app(PacketEvent ev, SimTime now);
  /// Routes a packet toward the application: straight through single-path,
  /// via the reordering join buffer under multipath.
  void route_to_app(const PacketEvent& ev, SimTime now);
  void send_path_reports();
  void note_subflow_arrival(const DataHeader& header, std::size_t media_len, SimTime now);
  /// Charges the stall beginning at `now` to the stalest subflow.
  void attribute_stall();

  std::unique_ptr<ObsState> obs_;

  // Receiver-report window state (media scaling feedback).
  bool report_timer_armed_ = false;
  std::uint64_t report_window_max_seq_ = 0;
  std::uint64_t report_window_received_ = 0;
  std::uint64_t reports_sent_ = 0;

 public:
  std::uint64_t receiver_reports_sent() const { return reports_sent_; }
};

}  // namespace streamlab
