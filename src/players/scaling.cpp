#include "players/scaling.hpp"

#include <algorithm>
#include <cmath>

namespace streamlab {

bool keep_frame(const EncodedFrame& frame, double keep_fraction) {
  if (frame.keyframe) return true;
  if (keep_fraction >= 1.0) return true;
  if (keep_fraction <= 0.0) return false;
  // Evenly spread selection: frame i survives when floor(i*f) advances.
  const double a = std::floor(static_cast<double>(frame.index) * keep_fraction);
  const double b = std::floor(static_cast<double>(frame.index + 1) * keep_fraction);
  return b > a;
}

ThinnedMediaCursor::Range ThinnedMediaCursor::next(std::size_t max_len,
                                                   double keep_fraction) {
  const auto& frames = clip_.frames();
  // Skip over thinned frames to the next kept byte.
  while (frame_index_ < frames.size()) {
    const EncodedFrame& f = frames[frame_index_];
    if (offset_in_frame_ == 0 && !keep_frame(f, keep_fraction)) {
      position_ += f.bytes;
      ++frame_index_;
      ++frames_skipped_;
      continue;
    }
    break;
  }
  if (frame_index_ >= frames.size()) return Range{position_, 0, true};

  const EncodedFrame& f = frames[frame_index_];
  const std::size_t available = f.bytes - offset_in_frame_;
  const std::size_t take = std::min(max_len, available);

  Range r;
  r.offset = f.byte_offset + offset_in_frame_;
  r.length = take;
  offset_in_frame_ += take;
  position_ = r.offset + take;
  kept_bytes_ += take;
  if (offset_in_frame_ >= f.bytes) {
    offset_in_frame_ = 0;
    ++frame_index_;
  }
  r.end_of_stream = frame_index_ >= frames.size();
  return r;
}

void ThinnedMediaCursor::seek(std::uint64_t media_offset) {
  const auto& frames = clip_.frames();
  while (frame_index_ < frames.size() &&
         frames[frame_index_].byte_offset + frames[frame_index_].bytes <= media_offset) {
    position_ = frames[frame_index_].byte_offset + frames[frame_index_].bytes;
    ++frame_index_;
  }
  if (frame_index_ < frames.size() && frames[frame_index_].byte_offset < media_offset) {
    offset_in_frame_ =
        static_cast<std::size_t>(media_offset - frames[frame_index_].byte_offset);
    position_ = media_offset;
  }
}

void ScalingController::on_report(double loss_fraction, SimTime now) {
  if (!policy_.enabled || policy_.levels.empty()) return;
  const Duration since_change = now - last_change_;

  if (loss_fraction > policy_.loss_down_threshold && level_ + 1 < policy_.levels.size()) {
    if (ever_changed_ && since_change < policy_.hold_time) return;
    ++level_;
    last_change_ = now;
    ever_changed_ = true;
    ++level_changes_;
  } else if (loss_fraction < policy_.loss_up_threshold && level_ > 0) {
    if (ever_changed_ &&
        since_change < policy_.hold_time.scaled(policy_.up_hold_multiplier))
      return;
    --level_;
    last_change_ = now;
    ever_changed_ = true;
    ++level_changes_;
  }
}

}  // namespace streamlab
