#include "players/protocol.hpp"

namespace streamlab {

std::vector<std::uint8_t> ControlMessage::encode() const {
  ByteWriter w(14 + clip_id.size());
  w.u16be(kControlMagic);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16be(value);
  w.u32be(static_cast<std::uint32_t>(offset >> 32));
  w.u32be(static_cast<std::uint32_t>(offset));
  w.u8(static_cast<std::uint8_t>(clip_id.size()));
  for (char c : clip_id) w.u8(static_cast<std::uint8_t>(c));
  return w.take();
}

std::optional<ControlMessage> ControlMessage::decode(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  if (r.u16be() != kControlMagic) return std::nullopt;
  ControlMessage msg;
  msg.type = static_cast<ControlType>(r.u8());
  msg.value = r.u16be();
  const std::uint64_t hi = r.u32be();
  const std::uint64_t lo = r.u32be();
  msg.offset = (hi << 32) | lo;
  const std::size_t len = r.u8();
  auto id = r.bytes(len);
  if (!r.ok()) return std::nullopt;
  msg.clip_id.assign(id.begin(), id.end());
  return msg;
}

std::vector<std::uint8_t> DataHeader::make_packet(const DataHeader& header,
                                                  std::size_t media_len) {
  const bool multipath = (header.flags & kFlagMultipath) != 0;
  ByteWriter w(kDataHeaderSize + (multipath ? kMultipathExtensionSize : 0) + media_len);
  w.u16be(kDataMagic);
  w.u8(header.flags);
  w.u8(multipath ? header.subflow_id : std::uint8_t{0});  // reserved pre-multipath
  w.u32be(header.seq);
  w.u32be(static_cast<std::uint32_t>(header.media_offset >> 32));
  w.u32be(static_cast<std::uint32_t>(header.media_offset));
  if (multipath) w.u32be(header.subflow_seq);
  // Synthetic media payload: deterministic pattern, compressible but nonzero
  // so captures are visually distinguishable from padding.
  for (std::size_t i = 0; i < media_len; ++i)
    w.u8(static_cast<std::uint8_t>((header.media_offset + i) & 0xFF));
  return w.take();
}

std::optional<DataHeader> DataHeader::decode(std::span<const std::uint8_t> payload,
                                             std::size_t& media_len) {
  ByteReader r(payload);
  if (r.u16be() != kDataMagic) return std::nullopt;
  DataHeader h;
  h.flags = r.u8();
  h.subflow_id = r.u8();  // reserved (always 0) without kFlagMultipath
  h.seq = r.u32be();
  const std::uint64_t hi = r.u32be();
  const std::uint64_t lo = r.u32be();
  if ((h.flags & kFlagMultipath) != 0) h.subflow_seq = r.u32be();
  if (!r.ok()) return std::nullopt;
  h.media_offset = (hi << 32) | lo;
  media_len = r.remaining();
  return h;
}

bool ParityHeader::covers(std::uint32_t seq) const {
  if (k == 0 || stride == 0 || seq < block_base) return false;
  const std::uint32_t delta = seq - block_base;
  return delta % stride == 0 && delta / stride < k;
}

std::vector<std::uint8_t> ParityHeader::make_packet(const ParityHeader& header,
                                                    std::size_t pad_len) {
  ByteWriter w(kParityHeaderSize + pad_len);
  w.u16be(kParityMagic);
  w.u8(header.k);
  w.u8(header.stride);
  w.u32be(header.block_base);
  w.u32be(static_cast<std::uint32_t>(header.xor_media_offset >> 32));
  w.u32be(static_cast<std::uint32_t>(header.xor_media_offset));
  w.u32be(header.xor_media_len);
  w.u8(header.xor_flags);
  w.u8(0);  // reserved
  for (std::size_t i = 0; i < pad_len; ++i) w.u8(0xFE);
  return w.take();
}

std::optional<ParityHeader> ParityHeader::decode(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  if (r.u16be() != kParityMagic) return std::nullopt;
  ParityHeader h;
  h.k = r.u8();
  h.stride = r.u8();
  h.block_base = r.u32be();
  const std::uint64_t hi = r.u32be();
  const std::uint64_t lo = r.u32be();
  h.xor_media_len = r.u32be();
  h.xor_flags = r.u8();
  r.u8();  // reserved
  if (!r.ok()) return std::nullopt;
  h.xor_media_offset = (hi << 32) | lo;
  return h;
}

}  // namespace streamlab
