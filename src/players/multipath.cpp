#include "players/multipath.hpp"

#include <algorithm>

namespace streamlab {

// --- SubflowScheduler ---

namespace {
/// Send-time ring size per subflow: enough history that the RTT sample for
/// the report's highest sequence is still present at any plausible rate.
constexpr std::size_t kSentRingSize = 64;
}  // namespace

SubflowScheduler::SubflowScheduler(const MultipathConfig& config) : config_(config) {
  paths_.resize(static_cast<std::size_t>(config.subflow_count()));
  paths_[0].weight = std::max(config.primary_weight, 1);
  paths_[1].weight = std::max(config.detour_weight, 1);
  for (Subflow& path : paths_) path.ring.resize(kSentRingSize);
}

void SubflowScheduler::set_draining(Subflow& path, bool draining, SimTime now) {
  if (path.health.draining == draining) {
    // Re-triggering an active drain extends its hold-down (a path that keeps
    // misbehaving keeps waiting).
    if (draining) path.health.drain_until = now + config_.hold_down;
    return;
  }
  path.health.draining = draining;
  ++path_switches_;
  if (draining) {
    path.health.drain_until = now + config_.hold_down;
  } else {
    path.health.strikes = 0;
  }
}

int SubflowScheduler::pick(SimTime now) {
  (void)now;
  if (all_draining()) {
    // Degradation rung: every path unhealthy. The stream collapses onto the
    // primary so the single-path watchdog / failover machinery owns it.
    ++degraded_ticks_;
    return 0;
  }
  // Smooth weighted round-robin (the nginx variant): spreads the weight
  // ratio evenly instead of bursting each path's full share back to back —
  // exactly what keeps join-buffer depth bounded.
  int total = 0;
  int best = -1;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    Subflow& path = paths_[i];
    if (path.health.draining) continue;
    path.current += path.weight;
    total += path.weight;
    if (best < 0 || path.current > paths_[static_cast<std::size_t>(best)].current)
      best = static_cast<int>(i);
  }
  paths_[static_cast<std::size_t>(best)].current -= total;
  return best;
}

std::uint32_t SubflowScheduler::stamp(int id, std::size_t media_len, SimTime now) {
  Subflow& path = paths_[static_cast<std::size_t>(id)];
  const std::uint32_t seq = path.next_subflow_seq++;
  path.ring[path.ring_next] = SentSample{seq, now};
  path.ring_next = (path.ring_next + 1) % path.ring.size();
  ++path.stats.packets_sent;
  path.stats.media_bytes_sent += media_len;
  if (!path.health.any_report && path.stats.packets_sent == 1)
    path.health.last_report = now;  // silence is measured from first use
  return seq;
}

void SubflowScheduler::on_report(int id, std::uint32_t highest_seq,
                                 std::uint32_t received, SimTime now) {
  Subflow& path = paths_[static_cast<std::size_t>(id)];
  ++path.stats.reports_received;
  path.health.last_report = now;
  path.health.any_report = true;
  path.health.strikes = 0;

  // RTT sample: the report echoes the highest subflow sequence it has seen;
  // if that send is still in the ring, now - send time is a full path round
  // trip (the report travelled back over the same path).
  const std::size_t valid =
      std::min<std::size_t>(static_cast<std::size_t>(path.stats.packets_sent),
                            path.ring.size());
  for (std::size_t i = 0; i < valid; ++i) {
    const SentSample& sample = path.ring[i];
    if (sample.subflow_seq == highest_seq && sample.sent_at <= now) {
      const double rtt_ms = (now - sample.sent_at).to_millis();
      path.health.ewma_rtt_ms = path.health.ewma_rtt_ms == 0.0
                                    ? rtt_ms
                                    : path.health.ewma_rtt_ms +
                                          config_.ewma_alpha *
                                              (rtt_ms - path.health.ewma_rtt_ms);
      break;
    }
  }

  // Loss over the report window: sequence advance vs packets delivered.
  const std::uint32_t prev_highest = path.any_report ? path.reported_highest : 0;
  const std::uint32_t prev_received = path.any_report ? path.reported_received : 0;
  const std::uint64_t expected =
      path.any_report ? (highest_seq > prev_highest ? highest_seq - prev_highest : 0)
                      : std::uint64_t{highest_seq} + 1;
  const std::uint64_t delivered = received > prev_received ? received - prev_received : 0;
  path.any_report = true;
  path.reported_highest = std::max(highest_seq, prev_highest);
  path.reported_received = std::max(received, prev_received);

  if (expected > 0) {
    const double window_loss =
        delivered >= expected
            ? 0.0
            : 1.0 - static_cast<double>(delivered) / static_cast<double>(expected);
    path.health.loss_ewma += config_.ewma_alpha * (window_loss - path.health.loss_ewma);
  } else {
    // No new traffic crossed the path this window (it is draining, or the
    // stripe is idle): decay toward clean so a parked path can rejoin.
    path.health.loss_ewma *= 1.0 - config_.ewma_alpha;
  }

  if (!path.health.draining && path.health.loss_ewma > config_.loss_unhealthy) {
    set_draining(path, true, now);
  } else if (path.health.draining && now >= path.health.drain_until &&
             path.health.loss_ewma < config_.loss_healthy) {
    set_draining(path, false, now);
  }
}

void SubflowScheduler::on_strike_tick(SimTime now) {
  for (Subflow& path : paths_) {
    if (path.stats.packets_sent == 0) continue;  // never used, nothing owed
    const Duration silence = now - path.health.last_report;
    if (silence <= config_.report_interval.scaled(2.0)) continue;
    if (++path.health.strikes >= config_.strike_limit) {
      set_draining(path, true, now);
      // A draining path's strikes stay saturated until a report clears them;
      // cap so the counter cannot overflow on a long outage.
      path.health.strikes = config_.strike_limit;
    }
  }
}

void SubflowScheduler::on_unreachable(int id, SimTime now) {
  set_draining(paths_[static_cast<std::size_t>(id)], true, now);
}

bool SubflowScheduler::all_draining() const {
  for (const Subflow& path : paths_)
    if (!path.health.draining) return false;
  return true;
}

// --- ReorderJoinBuffer ---

ReorderJoinBuffer::ReorderJoinBuffer(std::size_t capacity, Duration max_hold)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      max_hold_(max_hold),
      depth_counts_(capacity_ + 1, 0) {}

void ReorderJoinBuffer::sample_depth() {
  ++depth_counts_[std::min(held_.size(), capacity_)];
}

void ReorderJoinBuffer::release_run(std::vector<JoinPacket>& out) {
  auto it = held_.begin();
  while (it != held_.end() && it->first == next_release_) {
    out.push_back(it->second);
    ++next_release_;
    it = held_.erase(it);
  }
}

void ReorderJoinBuffer::force_release_front(std::vector<JoinPacket>& out) {
  auto it = held_.begin();
  out.push_back(it->second);
  next_release_ = std::uint64_t{it->first} + 1;
  held_.erase(it);
  ++forced_releases_;
  release_run(out);
}

std::vector<JoinPacket> ReorderJoinBuffer::insert(const JoinPacket& packet,
                                                  SimTime now) {
  std::vector<JoinPacket> out;
  // Expire stale holds first: the lowest-sequenced entry has been blocking
  // the cursor the longest; once it exceeds the hold budget the gap below it
  // is treated as lost (repair delivers it later, below the cursor).
  while (!held_.empty() && now - held_.begin()->second.arrival > max_hold_)
    force_release_front(out);

  if (packet.seq < next_release_) {
    // A sequence the buffer already skipped past (eviction or hold expiry):
    // a late original or a repair. Release immediately — out of global
    // order, but its media bytes still matter to coverage.
    out.push_back(packet);
    sample_depth();
    return out;
  }
  if (held_.contains(packet.seq)) {
    ++duplicates_;
    sample_depth();
    return out;
  }
  if (packet.seq == next_release_) {
    out.push_back(packet);
    ++next_release_;
    release_run(out);
  } else {
    held_.emplace(packet.seq, packet);
    while (held_.size() > capacity_) force_release_front(out);
  }
  sample_depth();
  return out;
}

std::vector<JoinPacket> ReorderJoinBuffer::flush() {
  std::vector<JoinPacket> out;
  out.reserve(held_.size());
  for (auto& [seq, packet] : held_) {
    out.push_back(packet);
    next_release_ = std::uint64_t{seq} + 1;
  }
  held_.clear();
  return out;
}

void ReorderJoinBuffer::reset() {
  held_.clear();
  next_release_ = 0;
}

std::uint32_t ReorderJoinBuffer::reorder_depth_p95() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : depth_counts_) total += count;
  if (total == 0) return 0;
  const std::uint64_t target = (total * 95 + 99) / 100;  // ceil(0.95 * total)
  std::uint64_t seen = 0;
  for (std::size_t depth = 0; depth < depth_counts_.size(); ++depth) {
    seen += depth_counts_[depth];
    if (seen >= target) return static_cast<std::uint32_t>(depth);
  }
  return static_cast<std::uint32_t>(capacity_);
}

}  // namespace streamlab
