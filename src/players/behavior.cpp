#include "players/behavior.hpp"

#include <algorithm>
#include <cmath>

#include "players/protocol.hpp"

namespace streamlab {

std::size_t WmBehavior::media_per_datagram(BitRate rate) const {
  const auto interval_bytes =
      static_cast<std::size_t>(std::max<std::int64_t>(0, rate.bytes_in(frame_interval)));
  return std::max(min_media_per_datagram, interval_bytes);
}

Duration WmBehavior::send_interval(BitRate rate, std::size_t media_len) const {
  // Pacing covers the full datagram (header included) so the on-wire data
  // rate equals the encoding rate exactly.
  return rate.transmission_time(media_len);
}

double RmBehavior::buffering_ratio(BitRate rate) const {
  const double r = std::max(rate.to_kbps(), 1.0);
  const double ratio = ratio_at_low * std::pow(56.0 / r, ratio_exponent);
  return std::clamp(ratio, ratio_floor, ratio_at_low);
}

Duration RmBehavior::burst_duration(BitRate rate) const {
  // Interpolate in log-rate between the 56 Kbps and 300 Kbps tiers.
  const double r = std::clamp(rate.to_kbps(), 56.0, 300.0);
  const double t = std::log(r / 56.0) / std::log(300.0 / 56.0);
  const double secs = burst_at_low.to_seconds() +
                      t * (burst_at_high.to_seconds() - burst_at_low.to_seconds());
  return Duration::from_seconds(secs);
}

Duration RmBehavior::burst_duration_for_clip(BitRate rate, Duration clip_length) const {
  const Duration nominal = burst_duration(rate);
  const Duration cap = clip_length.scaled(burst_max_fraction_of_clip);
  return std::min(nominal, cap);
}

std::size_t RmBehavior::mean_media_per_datagram(BitRate rate) const {
  // RealServer keeps packets well below the MTU and scales them with the
  // encoding rate; ~100 ms of media per packet with a floor, and a ceiling
  // chosen so mean * size_spread_max stays under max_media_per_datagram —
  // the spread survives clamping even for high-rate clips. At 36 Kbps the
  // mean is ~450 bytes, the middle of Figure 6's RealPlayer spread.
  const auto interval_bytes = static_cast<std::size_t>(
      std::max<std::int64_t>(0, rate.bytes_in(Duration::millis(100))));
  const auto mean_cap = static_cast<std::size_t>(
      static_cast<double>(max_media_per_datagram) / size_spread_max);
  return std::clamp(interval_bytes, min_media_per_datagram, mean_cap);
}

}  // namespace streamlab
