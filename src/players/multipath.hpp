// Multipath striping over the detour topology: instead of keeping the detour
// as a cold spare behind reactive failover, the server stripes the live
// stream across the primary chain and the detour path simultaneously, each
// subflow carrying its own sequence space on top of the stream-wide one.
//
// Three cooperating pieces live here, shared by server and client:
//
//  * PathHealthEstimator — per-subflow EWMA RTT and loss ratio fed by the
//    client's periodic path reports, plus consecutive-silence strikes. A
//    path is *unhealthy* when its loss EWMA crosses the threshold, its
//    strike count reaches the limit, or an ICMP Destination Unreachable
//    quotes its subflow addresses.
//
//  * SubflowScheduler — smooth weighted round-robin dispatcher over the
//    healthy subflows. An unhealthy path *drains*: it stops receiving new
//    packets and its share shifts to the survivors within one scheduling
//    round. A draining path rejoins only after a hold-down elapses AND a
//    fresh report shows its loss back under the healthy threshold (flap
//    damping). When every subflow is draining the scheduler degrades to the
//    primary path — the stream keeps flowing single-path and the existing
//    watchdog / ICMP / mirror-failover ladder takes over from there.
//
//  * ReorderJoinBuffer — client-side bounded buffer that restores global
//    playout order from the interleaved subflow arrivals before release to
//    the application. Duplicates are dropped, a full buffer evicts in
//    sequence order (oldest run first), entries held past the hold budget
//    are force-released so a lost packet cannot wedge the stream, and the
//    occupancy distribution is sampled for the reorder-depth p95 metric.
//
// Everything is deterministic: health state advances only on report arrival,
// timer ticks and ICMP events, all in simulated time.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/address.hpp"
#include "util/time.hpp"

namespace streamlab {

/// Multipath striping policy. Defaults describe a sensible two-path split;
/// `enabled` stays false so single-path sessions are byte-identical to the
/// pre-multipath build. The alias addresses are session wiring, filled in by
/// the harness from Network::enable_multipath().
struct MultipathConfig {
  bool enabled = false;
  /// Dispatch weights: primary chain and detour path shares of the stripe.
  int primary_weight = 2;
  int detour_weight = 1;
  /// Loss-ratio EWMA thresholds: a path drains above `loss_unhealthy` and
  /// may rejoin only once it has decayed below `loss_healthy` (hysteresis).
  double loss_unhealthy = 0.35;
  double loss_healthy = 0.10;
  /// EWMA smoothing factor for both the loss ratio and the RTT estimate.
  double ewma_alpha = 0.3;
  /// Consecutive report-silence strikes that mark a path unhealthy.
  int strike_limit = 3;
  /// Client report cadence per subflow; the server's strike timer checks at
  /// the same cadence and charges a strike after `strike_limit` silent
  /// intervals worth of silence.
  Duration report_interval = Duration::millis(250);
  /// Minimum time a draining path stays out before it may rejoin.
  Duration hold_down = Duration::millis(1500);
  /// Client join buffer capacity, in packets.
  std::size_t join_buffer_packets = 256;
  /// Longest a packet may wait in the join buffer for a lower sequence
  /// before being force-released (keeps a lost packet from wedging playout).
  Duration join_hold = Duration::millis(400);
  /// Benign-reordering NACK tolerance the harness copies into
  /// RepairLayerConfig::nack_reorder_tolerance when multipath is on.
  int nack_reorder_tolerance = 2;

  // --- Session wiring (set by the harness, not policy) ---
  Ipv4Address client_alias;  ///< client-side address of subflow 1
  Ipv4Address server_alias;  ///< server-side address of subflow 1

  int subflow_count() const { return 2; }
};

/// Per-subflow health state: EWMA RTT/loss fed by path reports, silence
/// strikes, and the draining flag with its hold-down deadline.
struct PathHealth {
  double ewma_rtt_ms = 0.0;
  double loss_ewma = 0.0;
  int strikes = 0;
  bool draining = false;
  SimTime drain_until;      ///< earliest rejoin time while draining
  SimTime last_report;      ///< when the last path report arrived
  bool any_report = false;  ///< a report has ever arrived
};

/// Server-side weighted dispatcher over the subflows, driven by per-path
/// health. Subflow 0 is the primary chain, subflow 1 the detour path.
class SubflowScheduler {
 public:
  struct SubflowStats {
    std::uint64_t packets_sent = 0;
    std::uint64_t media_bytes_sent = 0;
    std::uint64_t reports_received = 0;
  };

  explicit SubflowScheduler(const MultipathConfig& config);

  /// Picks the subflow for the next data packet: smooth weighted round-robin
  /// over the non-draining subflows. With every subflow draining, returns 0
  /// — the degradation rung where the stream collapses onto the primary
  /// path and the single-path recovery machinery owns survival.
  int pick(SimTime now);

  /// Stamps one packet onto `id`: returns the per-subflow sequence number
  /// and records (seq, send time, media bytes) for RTT sampling and stats.
  std::uint32_t stamp(int id, std::size_t media_len, SimTime now);

  /// Feeds a client path report: `highest_seq` / `received` are the
  /// cumulative per-subflow figures the client observed. Updates the loss
  /// EWMA over the report window, takes an RTT sample off the send-time
  /// ring, clears strikes, and applies the drain / rejoin transitions.
  void on_report(int id, std::uint32_t highest_seq, std::uint32_t received,
                 SimTime now);

  /// Strike-timer tick: every subflow silent for longer than a report
  /// interval (after having ever been used) takes a strike; at the strike
  /// limit the path drains.
  void on_strike_tick(SimTime now);

  /// ICMP Destination Unreachable about a subflow's address: immediate
  /// drain, no strike accumulation needed.
  void on_unreachable(int id, SimTime now);

  /// True when every subflow is draining (degraded to primary-only).
  bool all_draining() const;
  bool draining(int id) const { return paths_[static_cast<std::size_t>(id)].health.draining; }
  /// Healthy<->draining transitions across all subflows (the load-shift
  /// count a flap schedule produces).
  std::uint64_t path_switches() const { return path_switches_; }
  /// Ticks spent with every subflow draining (degraded-mode exposure).
  std::uint64_t degraded_ticks() const { return degraded_ticks_; }
  const SubflowStats& stats(int id) const {
    return paths_[static_cast<std::size_t>(id)].stats;
  }
  const PathHealth& health(int id) const {
    return paths_[static_cast<std::size_t>(id)].health;
  }
  int subflow_count() const { return static_cast<int>(paths_.size()); }

 private:
  struct SentSample {
    std::uint32_t subflow_seq = 0;
    SimTime sent_at;
  };
  struct Subflow {
    int weight = 1;
    int current = 0;  ///< smooth-WRR accumulator
    std::uint32_t next_subflow_seq = 0;
    std::uint32_t reported_highest = 0;   ///< highest_seq of the last report
    std::uint32_t reported_received = 0;  ///< received count of the last report
    bool any_report = false;
    PathHealth health;
    SubflowStats stats;
    std::vector<SentSample> ring;  ///< recent sends, for RTT sampling
    std::size_t ring_next = 0;
  };

  void set_draining(Subflow& path, bool draining, SimTime now);

  MultipathConfig config_;
  std::vector<Subflow> paths_;
  std::uint64_t path_switches_ = 0;
  std::uint64_t degraded_ticks_ = 0;
};

/// One packet inside the join buffer, carrying everything the client's
/// application-release path needs.
struct JoinPacket {
  std::uint32_t seq = 0;  ///< stream-wide sequence (release order key)
  std::uint64_t media_offset = 0;
  std::uint32_t media_len = 0;
  std::uint8_t flags = 0;
  std::uint8_t subflow_id = 0;
  SimTime arrival;
};

/// Client-side bounded reordering buffer restoring global playout order
/// across the interleaved subflow arrivals.
class ReorderJoinBuffer {
 public:
  ReorderJoinBuffer(std::size_t capacity, Duration max_hold);

  /// Inserts one arrival and returns every packet now releasable, in global
  /// sequence order. A packet below the release cursor (a gap the buffer
  /// already skipped past) is released immediately — the caller's coverage
  /// accounting still wants its bytes. Entries held longer than the hold
  /// budget are force-released first, so a lost sequence cannot wedge the
  /// stream.
  std::vector<JoinPacket> insert(const JoinPacket& packet, SimTime now);

  /// Releases everything still held, in sequence order (end of stream,
  /// failover teardown).
  std::vector<JoinPacket> flush();

  /// Drops all state and restarts the sequence cursor (mirror failover:
  /// the new epoch renumbers from 0).
  void reset();

  std::size_t depth() const { return held_.size(); }
  std::uint64_t duplicates_dropped() const { return duplicates_; }
  /// Packets released out of order because the buffer filled (sequence-order
  /// eviction of the oldest run) or the hold budget expired.
  std::uint64_t forced_releases() const { return forced_releases_; }
  /// p95 of the buffer-occupancy samples taken after every insert — the
  /// reorder depth the striping actually produced.
  std::uint32_t reorder_depth_p95() const;

 private:
  void release_run(std::vector<JoinPacket>& out);
  void force_release_front(std::vector<JoinPacket>& out);
  void sample_depth();

  std::size_t capacity_;
  Duration max_hold_;
  std::uint64_t next_release_ = 0;  ///< next stream-wide seq to release
  std::map<std::uint32_t, JoinPacket> held_;
  std::uint64_t duplicates_ = 0;
  std::uint64_t forced_releases_ = 0;
  /// Occupancy histogram: depth_counts_[min(depth, capacity)] observations.
  std::vector<std::uint64_t> depth_counts_;
};

}  // namespace streamlab
