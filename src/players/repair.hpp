// Loss repair layer: the two cooperating repair mechanisms the 2002-era
// players shipped, modelled generically so either server/client pair can
// attach them.
//
//  * Forward error correction: the server XORs every k-th data packet into an
//    interleaved parity row (stride rows per matrix, so a burst of up to
//    `stride` consecutive losses still leaves each row with at most one hole)
//    and emits one parity packet per completed row. The client-side decoder
//    reconstructs any single missing packet of a row from the other k-1 plus
//    the parity. Only header fields travel in the parity — the synthetic
//    media payload is deterministic from the recovered media offset — but the
//    parity packet is padded to the longest covered payload so the simulated
//    link pays honest parity bandwidth.
//
//  * NACK-driven retransmission: the client detects sequence gaps, batches
//    the missing numbers into RTCP-generic-NACK-style PID+BLP messages on an
//    RTT-scaled timer with a bounded retry budget, and the server answers
//    from a fixed-size retransmission ring through a token-bucket pacer so
//    repair traffic cannot starve live media.
//
// Everything here is deterministic: the pacer refills from simulated time,
// the NACK timer delays derive from the measured handshake RTT, and no
// wall-clock or entropy source is consulted.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "players/protocol.hpp"
#include "util/rate.hpp"
#include "util/time.hpp"

namespace streamlab {

/// Repair policy attached to a server/client pair. Defaults leave both
/// mechanisms off, preserving the unrepaired baseline byte for byte.
struct RepairLayerConfig {
  /// Data packets per FEC parity row; 0 disables FEC. Capped at 64 (the
  /// decoder tracks row membership in a 64-bit mask).
  int fec_k = 0;
  /// Interleave depth: consecutive sequence numbers land in different rows,
  /// so a loss burst of up to `fec_stride` packets is spread one-per-row.
  int fec_stride = 1;
  /// Enables NACK-driven retransmission.
  bool nack = false;
  /// First NACK fires rtt * multiplier after a gap is noticed (waiting out
  /// plain reordering), clamped to [nack_min_delay, nack_max_delay].
  double nack_rtt_multiplier = 1.5;
  Duration nack_min_delay = Duration::millis(20);
  Duration nack_max_delay = Duration::millis(500);
  /// NACKs sent per missing packet before the client gives it up as lost.
  int nack_max_retries = 3;
  /// Benign-reordering tolerance: a noticed gap *arms* its NACK only after
  /// this many higher-sequenced packets arrive while it is still open —
  /// multipath join jitter fills striping gaps within a couple of arrivals,
  /// so they never turn into spurious retransmit requests. A gap whose
  /// timer fires before it arms is held one extra delay (counted as a
  /// suppression), then requested anyway, so real tail losses still repair.
  /// 0 arms immediately: the single-path behaviour, byte for byte.
  int nack_reorder_tolerance = 0;
  /// Server-side retransmission ring capacity, in packets.
  std::size_t retx_buffer_packets = 512;
  /// Token-bucket pacer rate as a fraction of the clip's encoded rate.
  double pacer_rate_fraction = 0.25;
  /// Pacer burst allowance in bytes.
  std::size_t pacer_burst_bytes = 16 * 1024;

  bool enabled() const { return fec_k > 0 || nack; }
  bool fec_enabled() const { return fec_k > 0; }
  /// k clamped to the decoder's 64-packet row mask.
  int effective_k() const { return fec_k > 64 ? 64 : fec_k; }
  int effective_stride() const { return fec_stride < 1 ? 1 : fec_stride; }
};

/// A parity packet ready to serialize: header plus the pad length that makes
/// the wire size honest (longest covered payload).
struct ParityOut {
  ParityHeader header;
  std::size_t pad_len = 0;
};

/// A data packet reconstructed by the FEC decoder. The payload does not
/// exist client-side (it never arrived), but every field the player engine
/// accounts — sequence, media position, length, flags — is recovered.
struct RecoveredPacket {
  std::uint32_t seq = 0;
  std::uint64_t media_offset = 0;
  std::uint32_t media_len = 0;
  std::uint8_t flags = 0;
};

/// Server-side parity builder. Fed every outgoing data packet in sequence
/// order; returns completed parity rows as they fill. `flush()` closes the
/// partial rows left at end of stream (emitting parity with the reduced k
/// actually covered — a k=1 tail row degenerates to plain replication).
class FecBlockEncoder {
 public:
  FecBlockEncoder(int k, int stride);

  /// Accumulates one data packet; returns any rows it completed.
  std::vector<ParityOut> feed(std::uint32_t seq, std::uint64_t media_offset,
                              std::uint32_t media_len, std::uint8_t flags);
  /// Emits every partially filled row (end of stream).
  std::vector<ParityOut> flush();

 private:
  struct Row {
    std::uint32_t base = 0;
    int count = 0;
    std::uint64_t xor_offset = 0;
    std::uint32_t xor_len = 0;
    std::uint8_t xor_flags = 0;
    std::size_t max_len = 0;
  };

  ParityOut close_row(Row& row) const;

  int k_;
  int stride_;
  std::map<std::uint32_t, Row> rows_;  // block_base -> accumulating row
};

/// Client-side single-erasure decoder. Tracks per-row arrival masks and XOR
/// accumulators; when a row holds its parity and all but one data packet,
/// the hole is reconstructed.
class FecDecoder {
 public:
  FecDecoder(int k, int stride);

  /// Feeds a received data packet (originals and retransmissions alike; the
  /// caller must not feed duplicates). May complete a row.
  std::optional<RecoveredPacket> on_data(std::uint32_t seq, std::uint64_t media_offset,
                                         std::uint32_t media_len, std::uint8_t flags);
  /// Feeds a received parity packet. May complete a row immediately.
  std::optional<RecoveredPacket> on_parity(const ParityHeader& header);

  /// Drops all row state (sequence space restarted by a failover).
  void reset();
  std::size_t pending_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::optional<ParityHeader> parity;
    std::uint64_t mask = 0;  // bit j set = data packet base + stride*j arrived
    int count = 0;
    std::uint64_t xor_offset = 0;
    std::uint32_t xor_len = 0;
    std::uint8_t xor_flags = 0;
  };

  std::uint32_t row_base(std::uint32_t seq) const;
  std::optional<RecoveredPacket> try_recover(std::uint32_t base, Row& row);

  int k_;
  int stride_;
  std::map<std::uint32_t, Row> rows_;  // block_base -> row state
};

/// Bounded server-side history of sent data packets, ring-indexed by
/// sequence number, answering NACK lookups. Only packet *descriptions* are
/// stored — the synthetic payload regenerates from the media offset.
class RetransmitBuffer {
 public:
  explicit RetransmitBuffer(std::size_t capacity);

  void store(std::uint32_t seq, std::uint64_t media_offset, std::uint32_t media_len,
             std::uint8_t flags);
  /// The packet, if `seq` is still within the retained window.
  std::optional<RecoveredPacket> lookup(std::uint32_t seq) const;

 private:
  struct Slot {
    bool valid = false;
    RecoveredPacket packet;
  };
  std::vector<Slot> slots_;
};

/// Deterministic token bucket: tokens are bytes, refilled from elapsed
/// simulated time at a fixed rate, capped at the burst allowance.
class TokenBucketPacer {
 public:
  TokenBucketPacer(BitRate rate, std::size_t burst_bytes);

  /// Consumes `bytes` if available after refilling to `now`; false = the
  /// send must be dropped (the client's next NACK retry re-requests it).
  bool try_consume(SimTime now, std::size_t bytes);
  std::int64_t tokens() const { return tokens_; }

 private:
  BitRate rate_;
  std::int64_t capacity_;
  std::int64_t tokens_;
  SimTime last_refill_;
  bool primed_ = false;
};

/// Client-side NACK retry state machine. The client registers gaps as it
/// notices them; `due()` returns the batch to request when the timer fires,
/// advancing each entry's retry budget and dropping exhausted ones.
class NackTracker {
 public:
  explicit NackTracker(const RepairLayerConfig& config);

  /// RTT estimate from the PLAY handshake; rescales the retry delay.
  void set_rtt(Duration rtt);
  /// Current RTT-scaled delay between retries of one sequence.
  Duration delay() const;

  /// Registers a gap sequence; the first NACK is due one delay from `now`.
  /// With nack_reorder_tolerance > 0 the entry starts *unarmed* and only
  /// arms once enough higher-sequenced arrivals prove the gap is not plain
  /// reordering (or after the one-delay deadline fallback in due()).
  void note_missing(std::uint32_t seq, SimTime now);
  /// The sequence arrived (any copy): cancel its pending retries. Higher
  /// sequences also advance the arming window of every still-open gap below
  /// them.
  void note_arrival(std::uint32_t seq);

  /// Sequences whose NACK is due at `now`, in increasing order. Each is
  /// rescheduled one delay out; entries that exhausted the retry budget are
  /// dropped instead of returned.
  std::vector<std::uint32_t> due(SimTime now);
  /// Earliest pending deadline, if any sequence is still tracked.
  std::optional<SimTime> next_deadline() const;

  void reset() { pending_.clear(); }
  std::size_t pending() const { return pending_.size(); }
  /// Sequences dropped after exhausting the retry budget (given up).
  std::uint64_t abandoned() const { return abandoned_; }
  /// NACKs the reorder-tolerance window suppressed: gaps that filled
  /// naturally before arming, plus timer firings held while unarmed.
  std::uint64_t suppressed() const { return suppressed_; }

 private:
  struct Pending {
    SimTime deadline;
    int retries = 0;
    int later_arrivals = 0;  ///< higher-seq arrivals since the gap opened
    bool armed = true;       ///< false while the reorder window is open
  };

  RepairLayerConfig config_;
  Duration rtt_ = Duration::millis(100);
  std::map<std::uint32_t, Pending> pending_;
  std::uint64_t abandoned_ = 0;
  std::uint64_t suppressed_ = 0;
};

/// Packs missing sequences into RTCP-generic-NACK-style messages: each
/// message carries PID (first missing) and BLP (bitmap of the 16 following
/// sequences). `seqs` must be sorted ascending.
std::vector<ControlMessage> make_nack_messages(const std::string& clip_id,
                                               const std::vector<std::uint32_t>& seqs);

/// Expands one NACK message back into the requested sequences.
std::vector<std::uint32_t> nack_requested_seqs(const ControlMessage& msg);

}  // namespace streamlab
