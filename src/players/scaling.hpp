// Media scaling (frame thinning) — the adaptation mechanism Section VI of
// the paper says both commercial players possess: "capabilities that employ
// media scaling to reduce application level data rates in the presence of
// reduced bandwidth".
//
// Model: the client reports its recent loss fraction to the server at a
// fixed cadence; the server moves through discrete scaling levels, each a
// fraction of frames kept (keyframes always survive thinning). At level L
// the server transmits only the bytes of kept frames, paced at L x the
// encoding rate, so the flow fits inside a constrained bottleneck at the
// cost of frame rate instead of unbounded loss.
#pragma once

#include <cstdint>
#include <vector>

#include "media/encoder.hpp"
#include "util/time.hpp"

namespace streamlab {

struct MediaScalingPolicy {
  bool enabled = false;
  /// Scale down when the reported loss fraction exceeds this.
  double loss_down_threshold = 0.05;
  /// Scale back up when reported loss stays below this.
  double loss_up_threshold = 0.005;
  /// Client report cadence.
  Duration report_interval = Duration::seconds(2);
  /// Minimum dwell between level changes (guards against oscillation).
  Duration hold_time = Duration::seconds(6);
  /// Scaling back up is riskier than scaling down (it re-triggers the loss
  /// it just escaped), so up-moves wait this multiple of hold_time.
  double up_hold_multiplier = 4.0;
  /// Fraction of frames kept per level, best first. Level 0 = full stream.
  std::vector<double> levels = {1.0, 0.75, 0.5, 0.25};
};

/// Deterministic frame-thinning rule: keyframes always survive; P-frames
/// survive when their index crosses an integer boundary under the keep
/// fraction (an evenly spread selection).
bool keep_frame(const EncodedFrame& frame, double keep_fraction);

/// Walks the kept-frame byte ranges of a clip at a (dynamically changing)
/// scaling level. Ranges are reported in original byte-stream coordinates,
/// so client coverage still maps onto the frame table directly.
class ThinnedMediaCursor {
 public:
  explicit ThinnedMediaCursor(const EncodedClip& clip) : clip_(clip) {}

  struct Range {
    std::uint64_t offset = 0;
    std::size_t length = 0;  ///< 0 = stream exhausted
    bool end_of_stream = false;
  };

  /// Next contiguous run of kept bytes, at most `max_len` long, never
  /// spanning a thinning gap. `keep_fraction` may change between calls
  /// (level switches take effect at the next frame boundary).
  Range next(std::size_t max_len, double keep_fraction);

  /// Fast-forwards to `media_offset` (a resumed session: the client already
  /// holds everything before it). Bytes seeked past count neither as kept
  /// nor as skipped. Call before the first next().
  void seek(std::uint64_t media_offset);

  /// Bytes of media already walked past (kept + skipped).
  std::uint64_t position() const { return position_; }
  bool exhausted() const { return frame_index_ >= clip_.frames().size(); }
  /// Total kept bytes emitted so far.
  std::uint64_t kept_bytes() const { return kept_bytes_; }
  /// Frames skipped by thinning so far.
  std::uint32_t frames_skipped() const { return frames_skipped_; }

 private:
  const EncodedClip& clip_;
  std::size_t frame_index_ = 0;
  std::size_t offset_in_frame_ = 0;
  std::uint64_t position_ = 0;
  std::uint64_t kept_bytes_ = 0;
  std::uint32_t frames_skipped_ = 0;
};

/// Server-side scaling controller: consumes loss reports, yields the level.
class ScalingController {
 public:
  explicit ScalingController(MediaScalingPolicy policy) : policy_(std::move(policy)) {}

  /// Feeds a receiver report; may change the level (respecting hold_time).
  void on_report(double loss_fraction, SimTime now);

  double keep_fraction() const {
    return policy_.levels.empty() ? 1.0 : policy_.levels[level_];
  }
  std::size_t level() const { return level_; }
  std::size_t level_changes() const { return level_changes_; }
  const MediaScalingPolicy& policy() const { return policy_; }

 private:
  MediaScalingPolicy policy_;
  std::size_t level_ = 0;
  SimTime last_change_;
  bool ever_changed_ = false;
  std::size_t level_changes_ = 0;
};

}  // namespace streamlab
