// synthesize_traffic: Section IV end-to-end — run a measurement study, fit
// the empirical traffic model, generate a synthetic flow for a chosen clip,
// validate it against the fitted distributions, and export an ns-2 trace.
//
// Usage: synthesize_traffic [clip-id] [output.nstr]
#include <cstdio>
#include <string>

#include "core/study.hpp"
#include "tracegen/generator.hpp"
#include "tracegen/ns_trace.hpp"
#include "util/strings.hpp"

using namespace streamlab;

int main(int argc, char** argv) {
  const std::string clip_id = argc > 1 ? argv[1] : "set1/R-l";
  const std::string out_path = argc > 2 ? argv[2] : "/tmp/streamlab_flow.nstr";
  const auto clip = find_clip(clip_id);
  if (!clip) {
    std::fprintf(stderr, "unknown clip id '%s'\n", clip_id.c_str());
    return 1;
  }

  // A two-set study is enough to fit distributions spanning the rate range.
  std::printf("running calibration study (data sets %d and 6)...\n", clip->data_set);
  StudyConfig config;
  config.seed = 2002;
  const StudyResults study = run_study_subset(
      config, clip->data_set == 6 ? std::vector<int>{1, 6}
                                  : std::vector<int>{clip->data_set, 6});

  std::printf("fitting the Section IV flow model...\n");
  const FlowModel model = FlowModel::fit(study);

  SyntheticFlowGenerator generator(model, /*seed=*/99);
  const SyntheticFlow flow = generator.generate(*clip);

  std::printf("\nsynthetic %s flow (%s):\n", to_string(clip->player).c_str(),
              clip_id.c_str());
  std::printf("  path RTT drawn from Fig 1 distribution: %.1f ms\n", flow.rtt_ms);
  std::printf("  packets:            %zu\n", flow.packets.size());
  std::printf("  duration:           %.1f s (clip %s)\n", flow.duration_s(),
              to_string(clip->length).c_str());
  std::printf("  mean rate:          %.1f Kbps (encoded %.1f)\n", flow.mean_rate_kbps(),
              clip->encoded_rate.to_kbps());
  std::printf("  fragment fraction:  %.1f%%\n", 100.0 * flow.fragment_fraction());

  const auto v = validate_against_model(flow, model);
  std::printf("\nvalidation against the fitted distributions:\n");
  std::printf("  KS distance (normalized sizes):     %.3f\n", v.size_ks);
  std::printf("  KS distance (normalized intervals): %.3f\n", v.interval_ks);
  std::printf("  rate relative error:                %.1f%%\n",
              100.0 * v.rate_relative_error);

  if (!write_ns_trace_file(out_path, flow)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote ns-2 trace: %s (%zu packet events)\n", out_path.c_str(),
              flow.packets.size());
  return 0;
}
