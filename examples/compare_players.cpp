// compare_players: the paper's core methodology on one clip set — stream
// the RealPlayer and MediaPlayer versions of the same content simultaneously
// over one simulated path, and print a side-by-side comparison of the
// network turbulence each produces.
//
// Usage: compare_players [set 1-6] [low|high|very-high]
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/stats.hpp"
#include "core/experiment.hpp"
#include "core/study.hpp"
#include "util/strings.hpp"

using namespace streamlab;

namespace {

RateTier parse_tier(const char* text) {
  if (std::strcmp(text, "high") == 0) return RateTier::kHigh;
  if (std::strcmp(text, "very-high") == 0) return RateTier::kVeryHigh;
  return RateTier::kLow;
}

std::string describe(const ClipRunResult& r) {
  std::string out;
  out += "  encoded rate:        " + to_string(r.clip.encoded_rate) + "\n";
  out += "  playback bandwidth:  " + to_string(r.tracker.average_playback_bandwidth) + "\n";
  out += "  wire packets:        " + std::to_string(r.flow.size()) + "\n";
  out += "  IP fragments:        " + std::to_string(r.flow.fragment_count()) + " (" +
         fmt_double(100.0 * r.flow.fragment_fraction(), 1) + "%)\n";
  const auto sizes = SummaryStats::from(r.flow.packet_sizes());
  out += "  wire size mean/sd:   " + fmt_double(sizes.mean, 0) + " / " +
         fmt_double(sizes.stddev, 0) + " bytes\n";
  const auto gaps = SummaryStats::from(
      r.flow.interarrivals(r.clip.player == PlayerKind::kMediaPlayer));
  out += "  interarrival cv:     " +
         fmt_double(gaps.mean > 0 ? gaps.stddev / gaps.mean : 0.0, 3) + "\n";
  out += "  buffering ratio:     " + fmt_double(r.buffering.ratio(), 2) +
         (r.buffering.has_buffering_phase ? " (startup burst detected)" : "") + "\n";
  out += "  streaming duration:  " +
         fmt_double(r.server_streaming_duration.to_seconds(), 1) + " s\n";
  out += "  frame rate:          " + fmt_double(r.tracker.average_frame_rate, 1) +
         " fps\n";
  out += "  reception quality:   " + fmt_double(r.tracker.reception_quality(), 1) + "%\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int set_id = argc > 1 ? std::atoi(argv[1]) : 1;
  const RateTier tier = argc > 2 ? parse_tier(argv[2]) : RateTier::kLow;
  if (set_id < 1 || set_id > 6) {
    std::fprintf(stderr, "set must be 1..6\n");
    return 1;
  }
  const ClipSet& set = table1_catalog()[static_cast<std::size_t>(set_id - 1)];
  if (!set.pair(tier)) {
    std::fprintf(stderr, "set %d has no %s tier (only set 6 has very-high)\n", set_id,
                 to_string(tier).c_str());
    return 1;
  }

  std::printf("Streaming data set %d (%s, %s tier) — both players concurrently\n\n",
              set_id, to_string(set.content).c_str(), to_string(tier).c_str());

  ExperimentConfig config;
  config.path = path_for_data_set(set_id, /*seed=*/2002);
  config.seed = 11;
  const PairRunResult run = run_clip_pair(set, tier, config);

  std::printf("path: %d hops, avg RTT %s, ping loss %s%%\n\n", run.route.hop_count(),
              to_string(run.ping.avg_rtt()).c_str(),
              fmt_double(100.0 * run.ping.loss_fraction(), 2).c_str());

  std::printf("--- RealPlayer (%s) ---\n%s\n", run.real.clip.id().c_str(),
              describe(run.real).c_str());
  std::printf("--- MediaPlayer (%s) ---\n%s\n", run.media.clip.id().c_str(),
              describe(run.media).c_str());

  std::printf("The paper's conclusions, on this pair:\n");
  std::printf("  * RealPlayer burstier at startup:      ratio %.2f vs %.2f\n",
              run.real.buffering.ratio(), run.media.buffering.ratio());
  std::printf("  * MediaPlayer fragments at high rates: %.1f%% vs %.1f%%\n",
              100.0 * run.media.flow.fragment_fraction(),
              100.0 * run.real.flow.fragment_fraction());
  std::printf("  * RealPlayer streams finish sooner:    %.1f s vs %.1f s\n",
              run.real.server_streaming_duration.to_seconds(),
              run.media.server_streaming_duration.to_seconds());
  std::printf("  * Frame rate at this tier:             R %.1f fps vs M %.1f fps\n",
              run.real.tracker.average_frame_rate, run.media.tracker.average_frame_rate);
  return 0;
}
