// lab_shark: a miniature tshark — reads any libpcap file (including real
// captures of Ethernet/IPv4/UDP traffic), applies an optional display
// filter, and prints per-packet summaries plus the conversation table.
//
// Usage:
//   lab_shark <capture.pcap> [display-filter] [--max N]
//
// Generate an input with the capture_filter example, or feed a capture of
// your own.
#include <cstdio>
#include <cstring>
#include <string>

#include "dissect/conversations.hpp"
#include "filter/evaluator.hpp"
#include "pcap/pcap_file.hpp"
#include "util/strings.hpp"

using namespace streamlab;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: lab_shark <capture.pcap> [display-filter] [--max N]\n"
                 "example filters: \"udp\", \"ip.frag_offset > 0\", "
                 "\"frame.len == 1514 && udp.port == 1755\"\n");
    return 1;
  }
  const std::string path = argv[1];
  std::string filter_expr;
  std::size_t max_rows = 20;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max") == 0 && i + 1 < argc) {
      max_rows = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      filter_expr = argv[i];
    }
  }

  const auto trace = read_pcap_file(path);
  if (!trace) {
    std::fprintf(stderr, "error: %s\n", trace.error().c_str());
    return 1;
  }
  std::printf("%s: %zu packets, %llu bytes, %s\n\n", path.c_str(), trace->size(),
              static_cast<unsigned long long>(trace->total_bytes()),
              to_string(trace->duration()).c_str());

  const auto packets = dissect_trace(*trace);

  std::vector<const DissectedPacket*> selected;
  if (!filter_expr.empty()) {
    const auto compiled = filter::DisplayFilter::compile(filter_expr);
    if (!compiled) {
      std::fprintf(stderr, "filter error: %s\n", compiled.error().c_str());
      return 1;
    }
    selected = compiled->select(packets);
    std::printf("filter \"%s\": %zu/%zu packets match\n\n", filter_expr.c_str(),
                selected.size(), packets.size());
  } else {
    for (const auto& p : packets) selected.push_back(&p);
  }

  for (std::size_t i = 0; i < selected.size() && i < max_rows; ++i)
    std::printf("%6zu  %s\n", i + 1, selected[i]->summary().c_str());
  if (selected.size() > max_rows)
    std::printf("        ... %zu more (use --max to show)\n", selected.size() - max_rows);

  // Conversation table over the whole capture (Ethereal's Conversations).
  ConversationTable table;
  table.add_all(packets);
  std::printf("\nconversations (%zu):\n", table.size());
  for (const auto& conv : table.by_bytes()) {
    std::printf("  %-55s %6llu pkts  %9llu B  %8s Kbps  %llu frags\n",
                conv.label().c_str(),
                static_cast<unsigned long long>(conv.total_packets()),
                static_cast<unsigned long long>(conv.total_bytes()),
                fmt_double(conv.mean_rate_kbps(), 1).c_str(),
                static_cast<unsigned long long>(conv.fragments));
  }
  if (table.unattributed_packets() > 0)
    std::printf("  (%llu packets unattributed)\n",
                static_cast<unsigned long long>(table.unattributed_packets()));
  return 0;
}
