// turbulence_lab: the paper's comparison run through *scripted* network
// turbulence. Streams the WM/RM pair of one clip set while the fault layer
// plays impairment episodes onto the bottleneck link — a short link flap
// the delay buffers should absorb, a long outage the inactivity watchdog
// must detect, a Gilbert–Elliott burst-loss epoch, and a congestion
// (bandwidth) dip — then prints each session's recovery metrics and writes
// the CSV exports.
//
// Usage: turbulence_lab [set 1-6] [low|high|very-high] [export-dir]
//                       [--trace <dir>] [--chaos] [--multipath]
//                       [--fec <k>] [--nack]
//                       [--campaign <N>] [--workers <N>] [--verify-determinism]
//                       [--manifest <path>] [--seed <base>]
//                       [--progress-every <n>] [--plant-quarantine <index>]
//                       [--distributed] [--max-worker-restarts <n>]
//                       [--kill-worker-after <n>]
//                       [--fleet <N>] [--scheduler wheel|heap]
//
// With --fleet N the lab switches to the city-scale trial: N flyweight
// sessions (a struct-of-arrays table, ~26 bytes/session, zero allocations
// per event in steady state) stream a WM-profile CBR clip through a shared
// Gilbert–Elliott turbulence window on one deterministic event loop. The
// run prints sessions/sec and events/sec wall-clock throughput, delivery /
// loss / rebuffer statistics and the order-sensitive delivery digest. An
// audit::Auditor rides along (monotone event dispatch + fleet-wide packet
// conservation); any violation fails the run. --verify-determinism runs
// the fleet twice and exits nonzero when the digests differ. --scheduler
// selects the event-loop backend (default: the timing wheel; `heap` is the
// reference binary-heap queue) for every mode, fleet or not.
//
// With --distributed the campaign trials run on separate worker *processes*
// (this binary re-exec'd with the hidden --worker flag) under the
// crash-tolerant coordinator: heartbeats and per-trial deadlines detect
// dead/hung workers, their in-flight trials are reassigned (capped retries,
// exponential backoff, poison quarantine), dead slots respawn up to
// --max-worker-restarts times, and a fully-dead fleet degrades to the
// in-process pool. Results stay byte-identical with a serial run.
// --kill-worker-after <n> SIGKILLs worker 0 after n results as a
// deterministic fault-injection demo. SIGINT/SIGTERM during any campaign
// mode flushes the partial manifest + aggregate before exiting nonzero, so
// an interrupted study resumes cleanly.
//
// With --chaos the lab runs the self-healing scenarios instead of the link
// impairment set: a mid-stream router failure on a path with a detour
// segment (the route-repair control plane withdraws the primaries and the
// stream rides the detour), and the same failure without a detour but with
// a mirror server (the withdraw produces Destination Unreachable, the
// client fails over and resumes mid-clip). Combined with --campaign N the
// campaign trials run the detour-reroute chaos scenario.
//
// With --multipath the lab runs the flap-survival scenario: the server
// stripes each stream 2:1 across the chain and a detour branch
// (players/multipath.hpp) while the detour's first router flaps down/up
// three times. The health estimator drains the flapping subflow within a
// strike window, shifts the full load to the chain, and re-admits the
// detour after hold-down — the session rides every flap with zero mirror
// failovers, and the summary reports per-path loss/goodput, path switches,
// join-buffer reorder depth and suppressed NACKs. Combined with
// --campaign N the campaign trials run this scenario (taking precedence
// over --chaos trials).
//
// With --fec <k> the servers send one interleaved XOR parity packet per k
// data packets (stride 4, tuned for the burst-loss regime's mean burst
// length) and the clients reconstruct single erasures per parity row. With
// --nack the clients detect sequence gaps and request retransmission
// (RTT-scaled timeout, bounded retries; the server answers from a bounded
// buffer through a token-bucket pacer). Both flags apply to every scenario
// and campaign trial; each session's summary line then reports recovered
// packet counts, recovery ratio, repair latency and bandwidth overhead.
//
// With --trace, every scenario also dumps its observability data under
// <dir>/<scenario>/: trace.json (Chrome trace-event format — open it at
// ui.perfetto.dev), trace.ndjson, timeseries.csv and metrics.csv.
//
// With --campaign N the lab switches to campaign mode: N audited burst-loss
// trials per player (seeds base..base+N-1) with per-trial budgets, quarantine
// of throwing/violating trials, and an NDJSON resume manifest (--manifest;
// re-running with the same manifest skips finished trials). Trials run on a
// worker pool (--workers N; 0 = one per hardware thread, 1 = serial) with
// results committed in trial order, so the output is identical at any worker
// count; each campaign prints its trials/sec wall-clock throughput. Add
// --verify-determinism to run every trial twice and compare replay digests.
// Exits nonzero when any trial was quarantined.
//
// With --progress-every n the campaign prints a progress/health line every n
// committed trials (trials/sec, ETA, quarantine rate, worker utilization)
// plus a final cross-trial distribution digest; without the flag the output
// is byte-identical to earlier releases, so smoke-test diffs stay valid.
// Quarantined trials leave a flight-recorder post-mortem
// (<manifest>.postmortem-<seed>.ndjson) whose path is printed;
// --plant-quarantine <index> forces an audit violation in that trial to
// exercise the path deliberately.
//
// A scenario run that dies mid-flight still flushes the CSV rows of every
// scenario finished so far before exiting nonzero, so a crashed lab leaves
// salvageable partial exports rather than nothing.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "campaign/distributed.hpp"
#include "campaign/worker.hpp"
#include "core/campaign.hpp"
#include "core/export.hpp"
#include "core/fleet.hpp"
#include "core/turbulence.hpp"
#include "obs/export.hpp"
#include "util/strings.hpp"

using namespace streamlab;

namespace {

RateTier parse_tier(const char* text) {
  if (std::strcmp(text, "high") == 0) return RateTier::kHigh;
  if (std::strcmp(text, "very-high") == 0) return RateTier::kVeryHigh;
  return RateTier::kLow;
}

/// Repair layer selected by --fec/--nack; folded into every scenario config
/// (including the chaos and campaign variants) through base_config().
RepairLayerConfig g_repair;

/// --multipath: stripe the stream across the chain and the detour branch
/// with health-driven weights (players/multipath.hpp). Selects the
/// flap-survival chaos scenario and, with --campaign, multipath trials.
bool g_multipath = false;

TurbulenceScenarioConfig base_config() {
  TurbulenceScenarioConfig cfg;
  cfg.path.hop_count = 8;
  cfg.path.one_way_propagation = Duration::millis(20);
  cfg.seed = 42;
  cfg.recovery.inactivity_timeout = Duration::seconds(8);
  cfg.repair_layer = g_repair;
  return cfg;
}

FaultEpisode router_down_episode(int router_index, double start_s, double duration_s) {
  FaultEpisode down;
  down.kind = FaultKind::kRouterDown;
  down.router_index = router_index;
  down.start = SimTime::from_seconds(start_s);
  down.duration = Duration::seconds(static_cast<std::int64_t>(duration_s));
  down.label = "router-down";
  return down;
}

/// Chaos scenario 1: router 3 dies mid-stream on a path with a detour
/// bridging span [3,4]; the repair plane reroutes within detection delay +
/// hold-down and converges back when the router returns.
TurbulenceScenarioConfig chaos_reroute_config() {
  TurbulenceScenarioConfig cfg = base_config();
  cfg.path.detour = DetourConfig{3, 4, 2, 10};
  cfg.repair = RouteRepairConfig{};
  cfg.mirror_server = true;  // dormant backstop; the detour should win
  cfg.episodes.push_back(router_down_episode(3, 30.0, 10.0));
  return cfg;
}

/// Chaos scenario 2: the same failure without a detour. The repair plane
/// still withdraws the span's primaries, so the boundary routers answer with
/// Destination Unreachable instead of black-holing; the client fails over
/// to the mirror and resumes once the outage clears.
TurbulenceScenarioConfig chaos_failover_config() {
  TurbulenceScenarioConfig cfg = base_config();
  cfg.repair = RouteRepairConfig{};
  cfg.repair_span_first = 3;
  cfg.repair_span_last = 4;
  cfg.mirror_server = true;
  // Enough PLAY budget (exponential backoff from 500 ms) to span the
  // 20 s outage after the ~8 s watchdog triggers the failover.
  cfg.recovery.max_play_attempts = 8;
  cfg.episodes.push_back(router_down_episode(3, 30.0, 20.0));
  return cfg;
}

FaultEpisode detour_down_episode(int detour_index, double start_s, double duration_s) {
  FaultEpisode down = router_down_episode(detour_index, start_s, duration_s);
  down.detour = true;
  down.label = "detour-down";
  return down;
}

/// --multipath chaos scenario: asymmetric-capacity striping (the chain
/// carries twice the detour's share) while the detour's first router flaps
/// — three down/up cycles the health estimator must ride by draining
/// subflow 1 onto the chain and re-admitting it after each hold-down. The
/// mirror stays dormant: flap survival means zero failovers.
TurbulenceScenarioConfig chaos_multipath_config() {
  TurbulenceScenarioConfig cfg = base_config();
  cfg.path.detour = DetourConfig{3, 4, 2, 10};
  cfg.repair = RouteRepairConfig{};
  cfg.mirror_server = true;
  cfg.multipath.enabled = true;
  cfg.multipath.primary_weight = 2;
  cfg.multipath.detour_weight = 1;
  // Striping's intended operating point includes NACK repair: media striped
  // onto the flapping path before each drain is re-requested over the
  // surviving chain (with the reorder-tolerance window keeping cross-path
  // skew from spraying spurious NACKs).
  cfg.repair_layer.nack = true;
  for (const double start : {25.0, 37.0, 49.0})
    cfg.episodes.push_back(detour_down_episode(0, start, 6.0));
  return cfg;
}

void describe(const char* name, const TurbulenceRunResult& run) {
  std::printf("scenario: %s\n", name);
  for (const auto& rec : run.episodes) {
    std::printf("  episode %-12s %-14s t=%5.1fs +%5.1fs  dropped %llu packets\n",
                to_string(rec.episode.kind), rec.episode.label.c_str(),
                rec.episode.start.to_seconds(), rec.episode.duration.to_seconds(),
                static_cast<unsigned long long>(rec.packets_dropped));
  }
  const auto session = [](const SessionRecoveryMetrics& m) {
    std::printf("  %-5s %-10s attempts=%u%s%s%s", m.clip.id().c_str(),
                m.completed      ? "completed"
                : m.stream_dead  ? "DEAD"
                : m.abandoned    ? "ABANDONED"
                                 : "incomplete",
                m.play_attempts, m.stream_dead ? " (watchdog)" : "",
                m.abandoned ? " (retries exhausted)" : "",
                m.established ? "" : " never-established");
    if (m.time_to_recover)
      std::printf("  recover=%.2fs", m.time_to_recover->to_seconds());
    std::printf("  rebuffers=%u stall=%.1fs frames=%u/%u (during=%u after=%u) lost=%llu dup=%llu",
                m.rebuffer_events, m.stall_time.to_seconds(), m.frames_rendered,
                m.frames_rendered + m.frames_dropped, m.frames_dropped_during_episodes,
                m.frames_dropped_after_episodes,
                static_cast<unsigned long long>(m.packets_lost),
                static_cast<unsigned long long>(m.duplicate_packets));
    if (m.failovers > 0)
      std::printf("  failovers=%u (resume@%llu, %llu unreachables)", m.failovers,
                  static_cast<unsigned long long>(m.resume_offset),
                  static_cast<unsigned long long>(m.icmp_unreachables));
    if (m.stall_during_router_down > Duration::zero())
      std::printf("  router-down-stall=%.1fs",
                  m.stall_during_router_down.to_seconds());
    std::printf("\n");
    if (m.primary_packets + m.detour_packets > 0)
      std::printf(
          "        multipath: primary %llu pkts (loss %.1f%%, %.0f kbps) | "
          "detour %llu pkts (loss %.1f%%, %.0f kbps) | switches %llu | "
          "reorder-p95 %u | nack-suppressed %llu | stalls %u/%u%s\n",
          static_cast<unsigned long long>(m.primary_packets),
          100.0 * m.primary_loss_ratio(), m.primary_goodput_kbps,
          static_cast<unsigned long long>(m.detour_packets),
          100.0 * m.detour_loss_ratio(), m.detour_goodput_kbps,
          static_cast<unsigned long long>(m.path_switches), m.reorder_depth_p95,
          static_cast<unsigned long long>(m.nack_suppressed), m.primary_stalls,
          m.detour_stalls, m.multipath_degraded ? " DEGRADED" : "");
    if (m.packets_recovered > 0 || m.parity_packets > 0 || m.nacks_sent > 0)
      std::printf(
          "        repair: recovered=%llu (fec=%llu retx=%llu) ratio=%.1f%% "
          "latency=%.1f/%.1fms nacks=%llu overhead=%.2f%%\n",
          static_cast<unsigned long long>(m.packets_recovered),
          static_cast<unsigned long long>(m.recovered_by_fec),
          static_cast<unsigned long long>(m.recovered_by_retx),
          100.0 * m.recovery_ratio(), m.repair_latency_mean_ms,
          m.repair_latency_p95_ms, static_cast<unsigned long long>(m.nacks_sent),
          100.0 * m.repair_overhead());
  };
  if (run.real) session(*run.real);
  if (run.media) session(*run.media);
  if (run.reroutes > 0 || run.route_restores > 0)
    std::printf("  route repair: %llu reroutes, %llu restores\n",
                static_cast<unsigned long long>(run.reroutes),
                static_cast<unsigned long long>(run.route_restores));
  std::printf("  sessions failed: %d\n\n", run.sessions_abandoned());
}

/// Cooperative stop flag: SIGINT/SIGTERM set it, the campaign loops check
/// it between trials and flush everything committed so far before the
/// process exits nonzero. std::atomic<bool> is lock-free here, so the
/// handler is async-signal-safe.
std::atomic<bool> g_cancel{false};

extern "C" void handle_stop_signal(int) { g_cancel.store(true); }

/// The trial-shaping half of a campaign config — everything that feeds the
/// config digest. Coordinator and re-exec'd --worker processes must build
/// this identically (the distributed hello handshake verifies it).
CampaignConfig build_campaign_config(const ClipInfo& clip, std::size_t trials,
                                     std::uint64_t base_seed, bool verify_determinism,
                                     bool chaos, long long plant_quarantine) {
  CampaignConfig cfg;
  cfg.clip = clip;
  cfg.trials = trials;
  cfg.base_seed = base_seed;
  cfg.verify_determinism = verify_determinism;
  if (g_multipath) {
    // Multipath trials: striped stream surviving a flapping detour router,
    // audited and replay-verified like any other campaign.
    cfg.scenario = chaos_multipath_config();
  } else if (chaos) {
    // Self-healing trials: router failure + detour reroute (mirror armed
    // as backstop), audited and replay-verified like any other campaign.
    cfg.scenario = chaos_reroute_config();
  } else {
    cfg.scenario = base_config();
    FaultEpisode burst;
    burst.kind = FaultKind::kBurstLoss;
    burst.start = SimTime::from_seconds(20.0);
    burst.duration = Duration::seconds(25);
    burst.gilbert = GilbertElliottConfig{0.05, 0.25, 0.0, 0.6};
    burst.label = "burst-loss";
    cfg.scenario.episodes.push_back(burst);
  }
  // Budgets: generous enough that healthy trials never hit them, tight
  // enough that a runaway trial is truncated instead of hanging the lab.
  cfg.scenario.max_sim_events = 50'000'000;
  cfg.scenario.max_wall_time = std::chrono::seconds(120);
  if (plant_quarantine >= 0) {
    cfg.fault_hook = [plant_quarantine](audit::Auditor& auditor, std::size_t index,
                                        std::uint64_t) {
      if (index == static_cast<std::size_t>(plant_quarantine))
        auditor.force_violation("planted by --plant-quarantine");
    };
  }
  return cfg;
}

/// --distributed knobs gathered from the CLI, plus the worker command line
/// (this binary + the digest-relevant flags, minus the per-player
/// --worker selector appended in run_campaign_mode).
struct DistributedCli {
  bool enabled = false;
  std::size_t max_worker_restarts = 2;
  std::size_t kill_worker_after = 0;
  std::vector<std::string> worker_argv_base;
};

/// Campaign mode: N audited trials of the burst-loss scenario per player.
/// Returns the process exit code (nonzero when any trial was quarantined).
int run_campaign_mode(const ClipSet& set, RateTier tier, std::size_t trials,
                      std::uint64_t base_seed, bool verify_determinism,
                      const std::string& manifest_path, std::size_t workers,
                      bool chaos, std::size_t progress_every,
                      long long plant_quarantine, const DistributedCli& distrib) {
  const auto [real_clip, media_clip] = *set.pair(tier);
  int exit_code = 0;
  for (const ClipInfo* clip : {&real_clip, &media_clip}) {
    CampaignConfig cfg = build_campaign_config(*clip, trials, base_seed,
                                               verify_determinism, chaos,
                                               plant_quarantine);
    cfg.workers = workers;
    cfg.cancel = &g_cancel;
    const char* player = clip->player == PlayerKind::kMediaPlayer ? "media" : "real";
    if (!manifest_path.empty()) cfg.manifest_path = manifest_path + "." + player;
    if (progress_every > 0) {
      cfg.progress_every = progress_every;
      cfg.progress_hook = [](const CampaignProgress& p) {
        std::printf(
            "  progress: %zu/%zu trials | %.2f trials/sec | eta %.1fs | "
            "quarantine %.1f%% | util %.0f%% | workers %zu\n",
            p.trials_done, p.trials_total, p.trials_per_sec, p.eta_seconds,
            p.trials_done > 0
                ? 100.0 * static_cast<double>(p.quarantined) / static_cast<double>(p.trials_done)
                : 0.0,
            100.0 * p.worker_utilization, p.workers);
      };
    }

    std::printf("campaign: %s  %zu trials  seeds %llu..%llu%s%s\n", clip->id().c_str(),
                trials, static_cast<unsigned long long>(base_seed),
                static_cast<unsigned long long>(base_seed + trials - 1),
                verify_determinism ? "  (verifying determinism)" : "",
                distrib.enabled ? "  (distributed)" : "");
    CampaignResult result;
    const auto wall_start = std::chrono::steady_clock::now();
    try {
      if (distrib.enabled) {
        campaign::DistributedOptions opts;
        opts.worker_argv = distrib.worker_argv_base;
        opts.worker_argv.push_back("--worker");
        opts.worker_argv.push_back(player);
        // --workers 0 means "one per hardware thread" for the in-process
        // pool; for process workers default to the CI smoke's fleet of 4.
        opts.workers = workers > 0 ? workers : 4;
        opts.max_worker_restarts = distrib.max_worker_restarts;
        opts.kill_worker_after = distrib.kill_worker_after;
        // A healthy trial finishes far inside the 120 s wall budget; a
        // worker that sits on one for longer is hung, not slow.
        opts.trial_deadline = std::chrono::milliseconds(150'000);
        result = campaign::run_distributed_campaign(cfg, opts);
      } else {
        result = run_campaign(cfg);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "campaign %s failed: %s\n", player, e.what());
      return 1;
    }
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    for (const TrialOutcome& t : result.trials) {
      if (t.status == TrialStatus::kQuarantined) {
        std::printf("  trial %3zu seed %llu QUARANTINED: %s\n", t.index,
                    static_cast<unsigned long long>(t.seed), t.reason.c_str());
      } else if (!t.from_manifest) {
        std::printf("  trial %3zu seed %llu completed: %llu events, %llu checks%s\n",
                    t.index, static_cast<unsigned long long>(t.seed),
                    static_cast<unsigned long long>(t.sim_events),
                    static_cast<unsigned long long>(t.checks),
                    t.budget_exhausted ? " (budget exhausted)" : "");
      }
    }
    const CampaignAggregate& agg = result.aggregate;
    std::printf(
        "  %s: %zu completed (%zu resumed), %zu quarantined | sessions %llu/%llu "
        "completed, frames %llu/%llu rendered, %llu packets lost, stall %.1fs\n",
        player, result.completed, result.resumed, result.quarantined,
        static_cast<unsigned long long>(agg.sessions_completed),
        static_cast<unsigned long long>(agg.sessions),
        static_cast<unsigned long long>(agg.frames_rendered),
        static_cast<unsigned long long>(agg.frames_rendered + agg.frames_dropped),
        static_cast<unsigned long long>(agg.packets_lost), agg.stall_time.to_seconds());
    if (chaos)
      std::printf(
          "  self-healing: %llu reroutes, %llu restores, %llu failovers, "
          "router-down stall %.1fs\n",
          static_cast<unsigned long long>(agg.reroutes),
          static_cast<unsigned long long>(agg.route_restores),
          static_cast<unsigned long long>(agg.failovers),
          agg.router_down_stall.to_seconds());
    if (g_repair.enabled())
      std::printf(
          "  repair: %llu packets recovered, %llu NACKs sent, %llu retx answered, "
          "%llu parity packets\n",
          static_cast<unsigned long long>(agg.packets_recovered),
          static_cast<unsigned long long>(agg.nacks_sent),
          static_cast<unsigned long long>(agg.retransmissions_sent),
          static_cast<unsigned long long>(agg.parity_packets));
    if (g_multipath)
      std::printf("  multipath: %llu path switches, %llu NACKs suppressed\n",
                  static_cast<unsigned long long>(agg.path_switches),
                  static_cast<unsigned long long>(agg.nack_suppressed));
    const std::size_t ran = result.trials.size() - result.resumed;
    if (ran > 0 && wall_seconds > 0.0) {
      std::printf("  throughput: %zu trials in %.2fs wall = %.2f trials/sec (workers=%zu)\n",
                  ran, wall_seconds, static_cast<double>(ran) / wall_seconds, workers);
    }
    if (result.manifest_torn_lines > 0)
      std::printf("  manifest: tolerated %zu torn trailing line(s) from an earlier crash\n",
                  result.manifest_torn_lines);
    if (distrib.enabled) {
      std::printf("  fleet: %zu worker(s) lost, %zu restart(s), %zu trial(s) reassigned",
                  result.workers_lost, result.worker_restarts, result.reassigned_trials);
      if (result.reassigned_trials > 0)
        std::printf(" (%.1f ms mean reassignment latency)",
                    static_cast<double>(result.reassignment_latency_ns) / 1e6 /
                        static_cast<double>(result.reassigned_trials));
      if (result.degraded_to_in_process)
        std::printf(" — fleet died, degraded to in-process execution");
      std::printf("\n");
    }
    if (result.interrupted) {
      // The manifest already holds every committed trial (flushed line by
      // line) and the aggregate above folded them; a re-run with the same
      // --manifest resumes exactly where this stopped.
      std::printf("  interrupted: %zu/%zu trials committed; manifest is resume-clean\n",
                  result.trials.size(), trials);
      return 130;
    }
    {
      // Cross-trial distribution digest (deterministic: folded in commit
      // order from integer-count sketches, identical at any worker count;
      // resumed trials re-fold from the manifest, so a fully-resumed run
      // prints the same digest the original did).
      const std::string digest = result.telemetry.summary();
      if (!digest.empty()) {
        std::printf("  telemetry (%llu trials folded):\n",
                    static_cast<unsigned long long>(result.telemetry.trials_folded()));
        std::size_t start = 0;
        while (start < digest.size()) {
          const std::size_t end = digest.find('\n', start);
          std::printf("    %s\n", digest.substr(start, end - start).c_str());
          if (end == std::string::npos) break;
          start = end + 1;
        }
      }
    }
    for (const std::string& path : result.postmortem_paths)
      std::printf("  post-mortem: %s\n", path.c_str());
    if (!result.ok()) {
      exit_code = 1;
      std::printf("  quarantined seeds:");
      for (std::uint64_t seed : result.quarantined_seeds())
        std::printf(" %llu", static_cast<unsigned long long>(seed));
      std::printf("\n");
    }
  }
  return exit_code;
}

// --fleet N: the city-scale flyweight trial. Prints wall-clock throughput
// (the numbers BENCH_FLEET.json records via bench_fleet) plus the turbulence
// statistics; runs fully audited and, with --verify-determinism, twice.
int run_fleet_mode(std::size_t sessions, std::uint64_t seed,
                   bool verify_determinism) {
  FleetConfig config;
  config.sessions = sessions;
  config.seed = seed;

  audit::Auditor auditor;
  config.auditor = &auditor;

  const auto wall_start = std::chrono::steady_clock::now();
  const FleetResult r = run_fleet(config);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  const char* backend =
      config.scheduler == EventLoop::Scheduler::kWheel ? "wheel" : "heap";
  std::printf("fleet: %llu sessions, scheduler=%s, seed=%llu\n",
              static_cast<unsigned long long>(r.sessions), backend,
              static_cast<unsigned long long>(seed));
  std::printf("  sim time      %.2f s   wall %.3f s\n", r.sim_seconds,
              wall_seconds);
  std::printf("  throughput    %.0f sessions/s   %.0f events/s\n",
              wall_seconds > 0 ? static_cast<double>(r.sessions) / wall_seconds : 0.0,
              wall_seconds > 0 ? static_cast<double>(r.events_executed) / wall_seconds
                               : 0.0);
  std::printf("  events        %llu executed\n",
              static_cast<unsigned long long>(r.events_executed));
  std::printf("  packets       %llu sent, %llu delivered, %llu lost (%.2f%% delivered)\n",
              static_cast<unsigned long long>(r.packets_sent),
              static_cast<unsigned long long>(r.packets_delivered),
              static_cast<unsigned long long>(r.packets_lost),
              100.0 * r.delivery_ratio);
  std::printf("  rebuffering   %llu events across %llu sessions\n",
              static_cast<unsigned long long>(r.rebuffer_events),
              static_cast<unsigned long long>(r.sessions_rebuffered));
  std::printf("  table         %llu bytes (%.1f bytes/session)\n",
              static_cast<unsigned long long>(r.table_bytes), r.bytes_per_session);
  std::printf("  digest        %016llx\n",
              static_cast<unsigned long long>(r.digest));

  if (!auditor.report().clean()) {
    std::printf("  AUDIT VIOLATIONS:\n%s\n", auditor.report().summary().c_str());
    return 1;
  }
  std::printf("  audit         clean (%llu checks)\n",
              static_cast<unsigned long long>(auditor.report().checks_performed));

  if (verify_determinism) {
    const FleetResult replay = run_fleet(config);
    if (replay.digest != r.digest || replay.events_executed != r.events_executed) {
      std::printf("  DETERMINISM VIOLATION: replay digest %016llx != %016llx\n",
                  static_cast<unsigned long long>(replay.digest),
                  static_cast<unsigned long long>(r.digest));
      return 1;
    }
    std::printf("  determinism   verified (replay digest matches)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_dir;
  std::string manifest_path;
  std::size_t campaign_trials = 0;
  std::size_t campaign_workers = 0;  // 0 = one per hardware thread
  std::size_t fleet_sessions = 0;
  std::uint64_t base_seed = 1;
  std::size_t progress_every = 0;
  long long plant_quarantine = -1;
  bool verify_determinism = false;
  bool chaos = false;
  DistributedCli distrib;
  std::string worker_player;  // hidden --worker <media|real>: run as a child
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const auto flag_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_dir = flag_value("--trace");
    } else if (std::strcmp(argv[i], "--campaign") == 0) {
      campaign_trials = static_cast<std::size_t>(std::atoll(flag_value("--campaign")));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      campaign_workers = static_cast<std::size_t>(std::atoll(flag_value("--workers")));
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      fleet_sessions = static_cast<std::size_t>(std::atoll(flag_value("--fleet")));
      if (fleet_sessions == 0) {
        std::fprintf(stderr, "--fleet needs a positive session count\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--scheduler") == 0) {
      const char* which = flag_value("--scheduler");
      if (std::strcmp(which, "wheel") == 0) {
        EventLoop::set_default_scheduler(EventLoop::Scheduler::kWheel);
      } else if (std::strcmp(which, "heap") == 0) {
        EventLoop::set_default_scheduler(EventLoop::Scheduler::kHeap);
      } else {
        std::fprintf(stderr, "--scheduler must be wheel or heap\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--manifest") == 0) {
      manifest_path = flag_value("--manifest");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      base_seed = static_cast<std::uint64_t>(std::atoll(flag_value("--seed")));
    } else if (std::strcmp(argv[i], "--progress-every") == 0) {
      progress_every = static_cast<std::size_t>(std::atoll(flag_value("--progress-every")));
    } else if (std::strcmp(argv[i], "--plant-quarantine") == 0) {
      plant_quarantine = std::atoll(flag_value("--plant-quarantine"));
    } else if (std::strcmp(argv[i], "--fec") == 0) {
      const int k = std::atoi(flag_value("--fec"));
      if (k < 1 || k > 64) {
        std::fprintf(stderr, "--fec k must be 1..64\n");
        return 1;
      }
      g_repair.fec_k = static_cast<std::uint8_t>(k);
      // Interleave depth 4: the burst-loss regime's mean burst length, so a
      // whole burst lands in distinct parity rows and stays recoverable.
      g_repair.fec_stride = 4;
    } else if (std::strcmp(argv[i], "--nack") == 0) {
      g_repair.nack = true;
    } else if (std::strcmp(argv[i], "--multipath") == 0) {
      g_multipath = true;
    } else if (std::strcmp(argv[i], "--verify-determinism") == 0) {
      verify_determinism = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--distributed") == 0) {
      distrib.enabled = true;
    } else if (std::strcmp(argv[i], "--max-worker-restarts") == 0) {
      distrib.max_worker_restarts =
          static_cast<std::size_t>(std::atoll(flag_value("--max-worker-restarts")));
    } else if (std::strcmp(argv[i], "--kill-worker-after") == 0) {
      distrib.kill_worker_after =
          static_cast<std::size_t>(std::atoll(flag_value("--kill-worker-after")));
    } else if (std::strcmp(argv[i], "--worker") == 0) {
      worker_player = flag_value("--worker");
    } else {
      positional.push_back(argv[i]);
    }
  }
  // Fleet mode stands alone: no clip catalog, no export dir — one loop,
  // N flyweight sessions.
  if (fleet_sessions > 0)
    return run_fleet_mode(fleet_sessions, base_seed, verify_determinism);

  const int set_id = positional.size() > 0 ? std::atoi(positional[0]) : 1;
  const RateTier tier = positional.size() > 1 ? parse_tier(positional[1]) : RateTier::kLow;
  const std::string export_dir =
      positional.size() > 2 ? positional[2] : "/tmp/streamlab_turbulence";
  if (set_id < 1 || set_id > 6) {
    std::fprintf(stderr, "set must be 1..6\n");
    return 1;
  }
  const ClipSet& set = table1_catalog()[static_cast<std::size_t>(set_id - 1)];
  if (!set.pair(tier)) {
    std::fprintf(stderr, "set %d has no %s tier\n", set_id, to_string(tier).c_str());
    return 1;
  }

  // Hidden worker mode: we are a child of a --distributed coordinator.
  // Build the identical trial-shaping config (the hello handshake verifies
  // the digest) and speak the pipe protocol until shutdown.
  if (!worker_player.empty()) {
    if (campaign_trials == 0) {
      std::fprintf(stderr, "--worker requires --campaign\n");
      return 1;
    }
    const auto [real_clip, media_clip] = *set.pair(tier);
    const ClipInfo& clip = worker_player == "media" ? media_clip : real_clip;
    const CampaignConfig cfg = build_campaign_config(
        clip, campaign_trials, base_seed, verify_determinism, chaos, plant_quarantine);
    return campaign::run_campaign_worker(cfg);
  }

  if (campaign_trials > 0) {
    // An interrupted study must keep its committed trials: the cooperative
    // cancel flag lets the campaign flush the manifest + aggregate and
    // exit nonzero instead of dying mid-write.
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    if (distrib.enabled) {
      // Worker command line: this binary re-exec'd with every
      // digest-relevant flag; run_campaign_mode appends --worker <player>.
      char exe[4096];
      const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
      std::string exe_path;
      if (n > 0) {
        exe[n] = '\0';
        exe_path = exe;
      } else {
        exe_path = argv[0];
      }
      distrib.worker_argv_base = {exe_path, std::to_string(set_id),
                                  positional.size() > 1 ? positional[1] : "low",
                                  "--campaign", std::to_string(campaign_trials),
                                  "--seed", std::to_string(base_seed)};
      if (verify_determinism) distrib.worker_argv_base.push_back("--verify-determinism");
      if (chaos) distrib.worker_argv_base.push_back("--chaos");
      if (g_repair.fec_k > 0) {
        distrib.worker_argv_base.push_back("--fec");
        distrib.worker_argv_base.push_back(std::to_string(g_repair.fec_k));
      }
      if (g_repair.nack) distrib.worker_argv_base.push_back("--nack");
      if (g_multipath) distrib.worker_argv_base.push_back("--multipath");
      if (plant_quarantine >= 0) {
        distrib.worker_argv_base.push_back("--plant-quarantine");
        distrib.worker_argv_base.push_back(std::to_string(plant_quarantine));
      }
    }
    return run_campaign_mode(set, tier, campaign_trials, base_seed, verify_determinism,
                             manifest_path, campaign_workers, chaos, progress_every,
                             plant_quarantine, distrib);
  }

  std::vector<std::pair<std::string, TurbulenceRunResult>> runs;

  // One Obs per scenario: sim time restarts at zero for every run, so each
  // gets its own registry/trace and its own export directory.
  const auto run_scenario = [&](const char* name, TurbulenceScenarioConfig cfg) {
    std::unique_ptr<obs::Obs> obs;
    if (!trace_dir.empty()) {
      obs = std::make_unique<obs::Obs>();
      cfg.obs = obs.get();
    }
    runs.emplace_back(name, run_turbulence_pair(set, tier, cfg));
    if (obs) {
      const std::string dir = trace_dir + "/" + name;
      const int files = obs::export_trace(*obs, dir);
      std::printf("trace: wrote %d files to %s\n", files, dir.c_str());
    }
  };

  // Chaos (self-healing) scenarios: a paired run over the detour topology,
  // then per-player mirror-failover runs (the pair harness is
  // single-server, so failover uses the clip form).
  if (chaos || g_multipath) {
    const auto clip_pair = *set.pair(tier);
    // Mirror/multipath scenarios are single-server per session, so they use
    // the clip form, one run per player.
    const auto run_clip_scenario = [&](const std::string& name, const ClipInfo& clip,
                                       TurbulenceScenarioConfig cfg) {
      std::unique_ptr<obs::Obs> obs;
      if (!trace_dir.empty()) {
        obs = std::make_unique<obs::Obs>();
        cfg.obs = obs.get();
      }
      runs.emplace_back(name, run_turbulence_clip(clip, cfg));
      if (obs) {
        const std::string dir = trace_dir + "/" + name;
        const int files = obs::export_trace(*obs, dir);
        std::printf("trace: wrote %d files to %s\n", files, dir.c_str());
      }
    };
    try {
      if (chaos) {
        run_scenario("router-down-reroute", chaos_reroute_config());
        for (const ClipInfo* clip : {&clip_pair.first, &clip_pair.second}) {
          const std::string name =
              std::string("router-down-failover-") +
              (clip->player == PlayerKind::kMediaPlayer ? "media" : "real");
          run_clip_scenario(name, *clip, chaos_failover_config());
        }
      }
      if (g_multipath) {
        for (const ClipInfo* clip : {&clip_pair.first, &clip_pair.second}) {
          const std::string name =
              std::string("multipath-flap-") +
              (clip->player == PlayerKind::kMediaPlayer ? "media" : "real");
          run_clip_scenario(name, *clip, chaos_multipath_config());
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos scenario failed after %zu completed run(s): %s\n",
                   runs.size(), e.what());
      return 2;
    }
    for (const auto& [name, run] : runs) describe(name.c_str(), run);
    const int written = export_turbulence(runs, export_dir);
    std::printf("wrote %d CSV files to %s\n", written, export_dir.c_str());
    return 0;
  }

  try {
  // 1. A 4 s link flap at t=30s: shorter than the delay buffers, so both
  //    players should ride it out and complete playback.
  {
    TurbulenceScenarioConfig cfg = base_config();
    FaultEpisode flap;
    flap.kind = FaultKind::kOutage;
    flap.start = SimTime::from_seconds(30.0);
    flap.duration = Duration::seconds(4);
    flap.label = "short-flap";
    cfg.episodes.push_back(flap);
    run_scenario("short-outage", std::move(cfg));
  }

  // 2. A 30 s outage: longer than the 8 s inactivity window, so the
  //    watchdogs must declare both streams dead instead of hanging.
  {
    TurbulenceScenarioConfig cfg = base_config();
    FaultEpisode outage;
    outage.kind = FaultKind::kOutage;
    outage.start = SimTime::from_seconds(30.0);
    outage.duration = Duration::seconds(30);
    outage.label = "long-outage";
    cfg.episodes.push_back(outage);
    run_scenario("long-outage", std::move(cfg));
  }

  // 3. A Gilbert–Elliott burst-loss epoch (congested peering point).
  {
    TurbulenceScenarioConfig cfg = base_config();
    FaultEpisode burst;
    burst.kind = FaultKind::kBurstLoss;
    burst.start = SimTime::from_seconds(20.0);
    burst.duration = Duration::seconds(25);
    burst.gilbert = GilbertElliottConfig{0.05, 0.25, 0.0, 0.6};
    burst.label = "burst-loss";
    cfg.episodes.push_back(burst);
    run_scenario("burst-loss", std::move(cfg));
  }

  // 4. A congestion dip: bottleneck throttled to 200 Kbps with extra delay.
  {
    TurbulenceScenarioConfig cfg = base_config();
    FaultEpisode dip;
    dip.kind = FaultKind::kBandwidth;
    dip.start = SimTime::from_seconds(25.0);
    dip.duration = Duration::seconds(15);
    dip.bandwidth = BitRate::kbps(200);
    dip.label = "congestion-dip";
    cfg.episodes.push_back(dip);
    FaultEpisode lag;
    lag.kind = FaultKind::kExtraDelay;
    lag.start = SimTime::from_seconds(40.0);
    lag.duration = Duration::seconds(10);
    lag.extra_delay = Duration::millis(150);
    lag.label = "delay-spike";
    cfg.episodes.push_back(lag);
    run_scenario("congestion-dip", std::move(cfg));
  }
  } catch (const std::exception& e) {
    // A scenario died mid-flight. Flush the rows of every scenario that
    // finished so the partial CSVs are salvageable, then fail loudly.
    std::fprintf(stderr, "scenario failed after %zu completed run(s): %s\n",
                 runs.size(), e.what());
    const int written = export_turbulence(runs, export_dir);
    std::fprintf(stderr, "flushed %d partial CSV file(s) to %s\n", written,
                 export_dir.c_str());
    return 2;
  }

  for (const auto& [name, run] : runs) describe(name.c_str(), run);

  const int written = export_turbulence(runs, export_dir);
  std::printf("wrote %d CSV files to %s\n", written, export_dir.c_str());
  return 0;
}
