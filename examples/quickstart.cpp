// quickstart: stream one clip from the Table 1 catalog through the
// simulated network and print the application- and network-layer statistics
// the study's trackers record.
//
// Usage: quickstart [clip-id]      (default: set1/M-l)
// Clip ids follow Table 1: set<1-6>/<R|M>-<l|h|v>, e.g. set6/R-v.
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/study.hpp"
#include "util/strings.hpp"

using namespace streamlab;

int main(int argc, char** argv) {
  const std::string clip_id = argc > 1 ? argv[1] : "set1/M-l";
  const auto clip = find_clip(clip_id);
  if (!clip) {
    std::fprintf(stderr, "unknown clip id '%s' (try e.g. set1/M-l, set6/R-v)\n",
                 clip_id.c_str());
    return 1;
  }

  std::printf("streamlab quickstart\n");
  std::printf("clip: %s  (%s, %s, %s)\n", clip_id.c_str(),
              to_string(clip->content).c_str(), to_string(clip->player).c_str(),
              to_string(clip->encoded_rate).c_str());
  std::printf("length: %s, advertised %s\n\n", to_string(clip->length).c_str(),
              to_string(clip->advertised_rate).c_str());

  ExperimentConfig config;
  config.path = path_for_data_set(clip->data_set, /*seed=*/2002);
  config.seed = 7;
  const ClipRunResult run = run_single_clip(*clip, config);

  std::printf("--- application layer (tracker) ---\n");
  std::printf("encoded rate:        %s\n", to_string(run.tracker.encoded_rate).c_str());
  std::printf("playback bandwidth:  %s\n",
              to_string(run.tracker.average_playback_bandwidth).c_str());
  std::printf("average frame rate:  %s fps\n",
              fmt_double(run.tracker.average_frame_rate, 1).c_str());
  std::printf("frames rendered:     %u (dropped %u, quality %s%%)\n",
              run.tracker.frames_rendered, run.tracker.frames_dropped,
              fmt_double(run.tracker.reception_quality(), 1).c_str());
  std::printf("packets received:    %llu (lost %llu)\n",
              static_cast<unsigned long long>(run.tracker.total_packets),
              static_cast<unsigned long long>(run.tracker.total_lost));
  std::printf("startup delay:       %s\n", to_string(run.tracker.startup_delay).c_str());
  std::printf("streaming duration:  %s\n\n",
              to_string(run.tracker.streaming_duration).c_str());

  std::printf("--- network layer (sniffer) ---\n");
  std::printf("packets on wire:     %zu\n", run.flow.size());
  std::printf("IP fragments:        %zu (%s%%)\n", run.flow.fragment_count(),
              fmt_double(100.0 * run.flow.fragment_fraction(), 1).c_str());
  std::printf("mean wire rate:      %s Kbps\n",
              fmt_double(run.flow.mean_rate_kbps(), 1).c_str());
  std::printf("buffering ratio:     %s%s\n",
              fmt_double(run.buffering.ratio(), 2).c_str(),
              run.buffering.has_buffering_phase ? " (startup burst detected)" : "");
  return 0;
}
