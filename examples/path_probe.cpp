// path_probe: the pre-flight checks the paper ran before every experiment —
// "Before and after each run, ping and tracert were run to verify that the
// network status had not dramatically changed." Probes each of the six
// data-set paths and prints the ping/tracert output.
//
// Usage: path_probe [data-set 1-6]     (default: probe all six)
#include <cstdio>
#include <cstdlib>

#include "core/study.hpp"
#include "sim/tools.hpp"
#include "util/strings.hpp"

using namespace streamlab;

namespace {

void probe(int data_set) {
  Network net(path_for_data_set(data_set, /*seed=*/2002));
  Host& server = net.add_server("server");

  std::printf("--- data set %d path (%d routers) ---\n", data_set, net.hop_count());

  const TracerouteResult route = run_traceroute(net, server.address());
  std::printf("tracert to %s:\n", server.address().to_string().c_str());
  for (const auto& hop : route.hops) {
    std::printf("  %2d  %-16s %s\n", hop.ttl,
                hop.address ? hop.address->to_string().c_str() : "*",
                hop.address ? (fmt_double(hop.rtt.to_millis(), 1) + " ms").c_str() : "");
  }
  std::printf("%s after %d hops\n", route.reached ? "reached" : "NOT reached",
              route.hop_count());

  const PingResult ping = run_ping(net, server.address(), 10);
  std::printf("ping: %d sent, %d received (%.1f%% loss), rtt min/avg/max = "
              "%.1f/%.1f/%.1f ms\n\n",
              ping.sent, ping.received, 100.0 * ping.loss_fraction(),
              ping.min_rtt().to_millis(), ping.avg_rtt().to_millis(),
              ping.max_rtt().to_millis());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    const int set = std::atoi(argv[1]);
    if (set < 1 || set > 6) {
      std::fprintf(stderr, "data set must be 1..6\n");
      return 1;
    }
    probe(set);
    return 0;
  }
  for (int set = 1; set <= 6; ++set) probe(set);
  std::printf("(Figure 1/2 inputs: RTT median ~40 ms, hops mostly 15-20)\n");
  return 0;
}
