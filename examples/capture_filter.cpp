// capture_filter: the Ethereal workflow of the paper — capture a streaming
// session at the client NIC, write a standard pcap file, read it back, and
// interrogate it with display filters (fragment isolation, flow selection,
// size cuts).
//
// Usage: capture_filter [clip-id] [display-filter]
//   capture_filter set1/M-h "ip.frag_offset > 0"
// With no filter argument, a tour of useful filters runs.
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/study.hpp"
#include "filter/evaluator.hpp"
#include "pcap/pcap_file.hpp"
#include "util/strings.hpp"

using namespace streamlab;

namespace {

void apply_filter(const std::vector<DissectedPacket>& packets, const std::string& expr) {
  const auto compiled = filter::DisplayFilter::compile(expr);
  if (!compiled) {
    std::printf("  filter error: %s\n", compiled.error().c_str());
    return;
  }
  const auto matched = compiled->select(packets);
  std::printf("  %-52s -> %zu/%zu packets\n", expr.c_str(), matched.size(),
              packets.size());
  for (std::size_t i = 0; i < matched.size() && i < 3; ++i)
    std::printf("      %s\n", matched[i]->summary().c_str());
  if (matched.size() > 3) std::printf("      ...\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string clip_id = argc > 1 ? argv[1] : "set1/M-h";
  const auto clip = find_clip(clip_id);
  if (!clip) {
    std::fprintf(stderr, "unknown clip id '%s'\n", clip_id.c_str());
    return 1;
  }

  std::printf("capturing a %s session (%s)...\n", clip_id.c_str(),
              to_string(clip->encoded_rate).c_str());

  ExperimentConfig config;
  config.path = path_for_data_set(clip->data_set, 2002);
  config.seed = 5;
  config.keep_capture = true;
  config.snaplen = 65535;
  const ClipRunResult run = run_single_clip(*clip, config);

  // Write and re-read a real pcap file, as Ethereal would save it.
  const std::string path = "/tmp/streamlab_" + std::to_string(clip->data_set) + ".pcap";
  if (!run.capture || !write_pcap_file(path, *run.capture)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  const auto loaded = read_pcap_file(path);
  if (!loaded) {
    std::fprintf(stderr, "failed to re-read %s: %s\n", path.c_str(),
                 loaded.error().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu packets, %llu bytes, %s capture\n\n", path.c_str(),
              loaded->size(), static_cast<unsigned long long>(loaded->total_bytes()),
              to_string(loaded->duration()).c_str());

  const auto packets = dissect_trace(*loaded);

  if (argc > 2) {
    apply_filter(packets, argv[2]);
    return 0;
  }

  std::printf("display-filter tour:\n");
  apply_filter(packets, "udp");
  apply_filter(packets, "ip.frag_offset > 0");
  apply_filter(packets, "ip.flags.mf == 1 && ip.frag_offset == 0");
  apply_filter(packets, "frame.len == 1514");
  apply_filter(packets, "frame.len < 600 && udp");
  apply_filter(packets, "udp.port == " + std::to_string(kMediaServerPort));
  apply_filter(packets, "!(ip.fragment == 1)");
  return 0;
}
