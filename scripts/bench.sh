#!/usr/bin/env bash
# Records the benchmark JSON artifacts (BENCH_CAMPAIGN.json, BENCH_OBS.json,
# BENCH_REPAIR.json, BENCH_TELEMETRY.json, BENCH_DISTRIB.json,
# BENCH_FLEET.json, BENCH_MULTIPATH.json) from a Release build — and refuses
# anything else.
# Numbers measured from a debug or sanitized tree are not
# comparable to the committed baselines, so this script is the only
# sanctioned way to refresh them.
#
# Usage: scripts/bench.sh [build-dir]
#            record the artifacts (default build-dir: build-release,
#            configured with -DCMAKE_BUILD_TYPE=Release if absent)
#        scripts/bench.sh gate [--report-only] [build-dir]
#            re-run the same benchmarks into a scratch directory and compare
#            against the committed artifacts with scripts/bench_gate.py;
#            exits nonzero on regression (unless --report-only)
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=record
REPORT_ONLY=""
if [[ "${1:-}" == "gate" ]]; then
  MODE=gate
  shift
  if [[ "${1:-}" == "--report-only" ]]; then
    REPORT_ONLY="--report-only"
    shift
  fi
fi

BUILD_DIR="${1:-build-release}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi

CACHE="$BUILD_DIR/CMakeCache.txt"
if [[ ! -f "$CACHE" ]]; then
  echo "bench.sh: $BUILD_DIR is not a CMake build tree (no CMakeCache.txt)" >&2
  exit 1
fi

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$CACHE")"
SANITIZE="$(sed -n 's/^STREAMLAB_SANITIZE:[^=]*=//p' "$CACHE")"

if [[ "$BUILD_TYPE" != "Release" ]]; then
  echo "bench.sh: refusing to record benchmarks from a '$BUILD_TYPE' build;" >&2
  echo "          configure $BUILD_DIR with -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi
if [[ -n "$SANITIZE" ]]; then
  echo "bench.sh: refusing to record benchmarks from a sanitized build" >&2
  echo "          (STREAMLAB_SANITIZE=$SANITIZE); use a clean Release tree" >&2
  exit 1
fi

# benchmark binary -> artifact basename; one committed JSON per binary.
BINARIES=(bench_campaign bench_micro bench_repair bench_telemetry bench_distrib bench_fleet bench_multipath)
ARTIFACTS=(BENCH_CAMPAIGN.json BENCH_OBS.json BENCH_REPAIR.json BENCH_TELEMETRY.json BENCH_DISTRIB.json BENCH_FLEET.json BENCH_MULTIPATH.json)

cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${BINARIES[@]}"

if [[ "$MODE" == gate ]]; then
  OUT_DIR="$BUILD_DIR/bench-gate"
else
  OUT_DIR=.
fi
mkdir -p "$OUT_DIR"

# Each binary gets a wall-clock line, and its artifact is removed up front so
# a bench that crashes (or silently writes nothing) fails loudly here instead
# of the gate comparing a stale file from the previous run.
for i in "${!BINARIES[@]}"; do
  out="$OUT_DIR/${ARTIFACTS[$i]}"
  rm -f "$out"
  start=$SECONDS
  "$BUILD_DIR/bench/${BINARIES[$i]}" \
    --benchmark_out="$out" --benchmark_out_format=json \
    --benchmark_repetitions=3 --benchmark_report_aggregates_only=true
  elapsed=$((SECONDS - start))
  if [[ ! -s "$out" ]]; then
    echo "bench.sh: ${BINARIES[$i]} exited 0 but left $out missing/empty" >&2
    exit 1
  fi
  echo "bench.sh: ${BINARIES[$i]} -> ${ARTIFACTS[$i]} in ${elapsed}s"
done

if [[ "$MODE" == gate ]]; then
  GATE_ARGS=()
  for artifact in "${ARTIFACTS[@]}"; do
    if [[ ! -f "$artifact" ]]; then
      echo "bench.sh: no committed baseline $artifact; skipping" >&2
      continue
    fi
    GATE_ARGS+=("$artifact" "$OUT_DIR/$artifact")
  done
  if [[ ${#GATE_ARGS[@]} -eq 0 ]]; then
    echo "bench.sh: no committed baselines to gate against" >&2
    exit 2
  fi
  python3 scripts/bench_gate.py $REPORT_ONLY "${GATE_ARGS[@]}"
  exit $?
fi

# google-benchmark's context.library_build_type describes the *benchmark
# library* shipped with the toolchain, not our binaries — stamp the build
# type this script just verified so the artifact is self-describing.
python3 - <<'EOF'
import json
for path in ("BENCH_CAMPAIGN.json", "BENCH_OBS.json", "BENCH_REPAIR.json",
             "BENCH_TELEMETRY.json", "BENCH_DISTRIB.json", "BENCH_FLEET.json",
             "BENCH_MULTIPATH.json"):
    with open(path) as f:
        d = json.load(f)
    d["context"]["streamlab_build_type"] = "Release"
    d["context"]["streamlab_note"] = (
        "library_build_type reflects the prebuilt google-benchmark library; "
        "streamlab itself is compiled with CMAKE_BUILD_TYPE=Release and no "
        "sanitizers (enforced by scripts/bench.sh). Parallel campaign "
        "speedup is bounded by context.num_cpus on the recording host.")
    with open(path, "w") as f:
        json.dump(d, f, indent=1)
        f.write("\n")
EOF

echo "bench.sh: wrote ${ARTIFACTS[*]} (Release, unsanitized)"
