#!/usr/bin/env bash
# Tier-1 verification under ASan/UBSan: configures a dedicated build tree
# with STREAMLAB_SANITIZE, builds everything, and runs the full test suite.
# Usage: scripts/check.sh [sanitizer-list]   (default: address,undefined)
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS="${1:-address,undefined}"
BUILD_DIR="build-sanitize"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTREAMLAB_SANITIZE="$SANITIZERS"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
