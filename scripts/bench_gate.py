#!/usr/bin/env python3
"""Benchmark regression gate: compare fresh google-benchmark JSON against a
committed baseline and fail on drift beyond a tolerance band.

Usage:
    bench_gate.py [--tolerance PCT] [--overhead-ceiling PCT] [--report-only]
                  BASELINE CURRENT [BASELINE CURRENT ...]

Positional arguments come in (baseline, current) pairs — e.g. the committed
BENCH_CAMPAIGN.json against a just-recorded run of the same binary. Normally
invoked via `scripts/bench.sh gate`, which produces the CURRENT files from a
verified Release tree.

What is compared, per benchmark name (aggregate mean preferred when
--benchmark_repetitions recorded one):
  * real_time            — lower is better
  * items_per_second and any *_per_sec rate counter — higher is better
  * overhead_pct counter — gated against an absolute ceiling (default 5.0),
    not against the baseline: the telemetry acceptance bar is "within 5% of
    the no-telemetry path", so a baseline that happened to record 2% must
    not make 4% a failure.
  * allocs_per_event counter — same absolute-ceiling treatment (default
    1.0): the flyweight-scheduler acceptance bar is "at most one heap
    allocation per executed event in steady state" (BENCH_FLEET.json,
    BENCH_OBS.json), independent of what the baseline happened to record.

A benchmark present in the baseline but missing from the current run counts
as a regression (a silently deleted benchmark would otherwise hide one).
Benchmarks only in the current run are reported but never fail the gate.

Exit codes: 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys

# Generous by design: single-digit-CPU recording hosts show ±30% run-to-run
# drift on multi-millisecond campaign benches, so a tight band would page on
# weather. The gate exists to catch step-function regressions (an accidental
# debug build, a hot-path pessimization), not single-digit creep — trend
# tracking belongs to the recorded artifacts' history.
DEFAULT_TOLERANCE_PCT = 50.0
DEFAULT_OVERHEAD_CEILING_PCT = 5.0
DEFAULT_ALLOCS_PER_EVENT_CEILING = 1.0


def load_benchmarks(path):
    """Returns {name: entry} preferring per-repetition aggregate means."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        raise SystemExit(f"bench_gate: cannot read {path}: {err}")
    entries = doc.get("benchmarks")
    if not isinstance(entries, list):
        raise SystemExit(f"bench_gate: {path} has no 'benchmarks' array")
    plain, means = {}, {}
    for entry in entries:
        name = entry.get("run_name") or entry.get("name")
        if not name:
            continue
        aggregate = entry.get("aggregate_name")
        if aggregate == "mean":
            means[name] = entry
        elif aggregate is None:
            plain[name] = entry
    merged = dict(plain)
    merged.update(means)  # mean wins when both exist
    return merged


def metrics_of(entry):
    """Yields (metric_name, value, higher_is_better) for gated metrics."""
    if isinstance(entry.get("real_time"), (int, float)):
        yield "real_time", float(entry["real_time"]), False
    if isinstance(entry.get("items_per_second"), (int, float)):
        yield "items_per_second", float(entry["items_per_second"]), True
    for key, value in entry.items():
        if key.endswith("_per_sec") and isinstance(value, (int, float)):
            yield key, float(value), True


def compare(baseline_path, current_path, tolerance_pct, overhead_ceiling_pct,
            allocs_ceiling):
    """Returns (regressions, report_lines)."""
    base = load_benchmarks(baseline_path)
    cur = load_benchmarks(current_path)
    regressions, lines = [], []

    for name in sorted(base):
        if name not in cur:
            regressions.append(f"{name}: missing from current run")
            continue
        base_entry, cur_entry = base[name], cur[name]
        cur_metrics = {m: (v, hib) for m, v, hib in metrics_of(cur_entry)}
        for metric, base_value, higher_better in metrics_of(base_entry):
            if metric not in cur_metrics or base_value == 0:
                continue
            cur_value = cur_metrics[metric][0]
            delta_pct = (cur_value - base_value) / base_value * 100.0
            worse = -delta_pct if higher_better else delta_pct
            verdict = "REGRESSION" if worse > tolerance_pct else "ok"
            lines.append(
                f"{verdict:>10}  {name} {metric}: "
                f"{base_value:.6g} -> {cur_value:.6g} ({delta_pct:+.1f}%)")
            if worse > tolerance_pct:
                regressions.append(
                    f"{name} {metric}: {delta_pct:+.1f}% "
                    f"(tolerance ±{tolerance_pct:.0f}%)")
        # Absolute gate: the telemetry overhead acceptance bar. The ceiling
        # is a claim about the *committed* artifact, so it binds the
        # baseline strictly; a fresh run's estimate swings by ~a point on
        # noisy hosts, so it only fails when clearly above the ceiling
        # (1.5x) — within that band the strict baseline check is the claim.
        for which, entry, ceiling in (
                ("baseline", base_entry, overhead_ceiling_pct),
                ("current", cur_entry, overhead_ceiling_pct * 1.5)):
            overhead = entry.get("overhead_pct")
            if not isinstance(overhead, (int, float)):
                continue
            ok = float(overhead) <= ceiling
            lines.append(
                f"{'ok' if ok else 'REGRESSION':>10}  {name} "
                f"overhead_pct[{which}]: {overhead:.2f} "
                f"(ceiling {ceiling:.2f})")
            if not ok:
                regressions.append(
                    f"{name} overhead_pct[{which}]: {overhead:.2f} "
                    f"exceeds ceiling {ceiling:.2f}")
        # Absolute gate: the flyweight-scheduler allocation bar. Allocation
        # counts are near-deterministic (no timing noise), so the ceiling
        # binds baseline and current runs equally strictly.
        for which, entry in (("baseline", base_entry), ("current", cur_entry)):
            allocs = entry.get("allocs_per_event")
            if not isinstance(allocs, (int, float)):
                continue
            ok = float(allocs) <= allocs_ceiling
            lines.append(
                f"{'ok' if ok else 'REGRESSION':>10}  {name} "
                f"allocs_per_event[{which}]: {allocs:.4f} "
                f"(ceiling {allocs_ceiling:.2f})")
            if not ok:
                regressions.append(
                    f"{name} allocs_per_event[{which}]: {allocs:.4f} "
                    f"exceeds ceiling {allocs_ceiling:.2f}")

    for name in sorted(set(cur) - set(base)):
        lines.append(f"{'new':>10}  {name} (not in baseline; not gated)")
    return regressions, lines


def main(argv):
    parser = argparse.ArgumentParser(
        description="Compare benchmark JSON against committed baselines.")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE_PCT, metavar="PCT",
                        help="allowed drift before a metric counts as a "
                             "regression (default %(default)s%%)")
    parser.add_argument("--overhead-ceiling", type=float,
                        default=DEFAULT_OVERHEAD_CEILING_PCT, metavar="PCT",
                        help="absolute ceiling for overhead_pct counters "
                             "(default %(default)s%%)")
    parser.add_argument("--allocs-ceiling", type=float,
                        default=DEFAULT_ALLOCS_PER_EVENT_CEILING, metavar="N",
                        help="absolute ceiling for allocs_per_event counters "
                             "(default %(default)s)")
    parser.add_argument("--report-only", action="store_true",
                        help="print the comparison but always exit 0")
    parser.add_argument("files", nargs="+", metavar="BASELINE CURRENT",
                        help="baseline/current JSON pairs")
    args = parser.parse_args(argv)

    if len(args.files) % 2 != 0:
        parser.error("expected BASELINE CURRENT pairs (even argument count)")

    all_regressions = []
    for baseline, current in zip(args.files[::2], args.files[1::2]):
        print(f"== {baseline} vs {current}")
        regressions, lines = compare(
            baseline, current, args.tolerance, args.overhead_ceiling,
            args.allocs_ceiling)
        for line in lines:
            print(line)
        all_regressions.extend(regressions)

    if all_regressions:
        print(f"\nbench_gate: {len(all_regressions)} regression(s):")
        for r in all_regressions:
            print(f"  - {r}")
        return 0 if args.report_only else 1
    print("\nbench_gate: all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except SystemExit as exc:
        if isinstance(exc.code, str):
            print(exc.code, file=sys.stderr)
            sys.exit(2)
        raise
