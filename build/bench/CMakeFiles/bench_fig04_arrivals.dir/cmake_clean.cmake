file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_arrivals.dir/bench_fig04_arrivals.cpp.o"
  "CMakeFiles/bench_fig04_arrivals.dir/bench_fig04_arrivals.cpp.o.d"
  "bench_fig04_arrivals"
  "bench_fig04_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
