# Empty dependencies file for bench_fig13_framerate_time.
# This may be replaced when dependencies are built.
