file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_pktsize_pdf.dir/bench_fig06_pktsize_pdf.cpp.o"
  "CMakeFiles/bench_fig06_pktsize_pdf.dir/bench_fig06_pktsize_pdf.cpp.o.d"
  "bench_fig06_pktsize_pdf"
  "bench_fig06_pktsize_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_pktsize_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
