# Empty compiler generated dependencies file for bench_fig06_pktsize_pdf.
# This may be replaced when dependencies are built.
