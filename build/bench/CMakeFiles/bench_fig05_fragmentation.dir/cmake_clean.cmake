file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_fragmentation.dir/bench_fig05_fragmentation.cpp.o"
  "CMakeFiles/bench_fig05_fragmentation.dir/bench_fig05_fragmentation.cpp.o.d"
  "bench_fig05_fragmentation"
  "bench_fig05_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
