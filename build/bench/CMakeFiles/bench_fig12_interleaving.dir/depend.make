# Empty dependencies file for bench_fig12_interleaving.
# This may be replaced when dependencies are built.
