file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_interleaving.dir/bench_fig12_interleaving.cpp.o"
  "CMakeFiles/bench_fig12_interleaving.dir/bench_fig12_interleaving.cpp.o.d"
  "bench_fig12_interleaving"
  "bench_fig12_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
