# Empty dependencies file for bench_fig11_buffering.
# This may be replaced when dependencies are built.
