file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_framerate_bw.dir/bench_fig15_framerate_bw.cpp.o"
  "CMakeFiles/bench_fig15_framerate_bw.dir/bench_fig15_framerate_bw.cpp.o.d"
  "bench_fig15_framerate_bw"
  "bench_fig15_framerate_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_framerate_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
