# Empty compiler generated dependencies file for bench_fig15_framerate_bw.
# This may be replaced when dependencies are built.
