# Empty dependencies file for bench_fig09_interarrival_cdf.
# This may be replaced when dependencies are built.
