file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_aggregate.dir/bench_ext_aggregate.cpp.o"
  "CMakeFiles/bench_ext_aggregate.dir/bench_ext_aggregate.cpp.o.d"
  "bench_ext_aggregate"
  "bench_ext_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
