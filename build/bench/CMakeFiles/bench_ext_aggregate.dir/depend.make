# Empty dependencies file for bench_ext_aggregate.
# This may be replaced when dependencies are built.
