file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_playback.dir/bench_fig03_playback.cpp.o"
  "CMakeFiles/bench_fig03_playback.dir/bench_fig03_playback.cpp.o.d"
  "bench_fig03_playback"
  "bench_fig03_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
