file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_congestion.dir/bench_ext_congestion.cpp.o"
  "CMakeFiles/bench_ext_congestion.dir/bench_ext_congestion.cpp.o.d"
  "bench_ext_congestion"
  "bench_ext_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
