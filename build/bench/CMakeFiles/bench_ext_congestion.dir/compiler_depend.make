# Empty compiler generated dependencies file for bench_ext_congestion.
# This may be replaced when dependencies are built.
