file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_pktsize_norm.dir/bench_fig07_pktsize_norm.cpp.o"
  "CMakeFiles/bench_fig07_pktsize_norm.dir/bench_fig07_pktsize_norm.cpp.o.d"
  "bench_fig07_pktsize_norm"
  "bench_fig07_pktsize_norm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_pktsize_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
