# Empty dependencies file for bench_fig07_pktsize_norm.
# This may be replaced when dependencies are built.
