# Empty dependencies file for bench_ext_tcp_friendliness.
# This may be replaced when dependencies are built.
