file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tcp_friendliness.dir/bench_ext_tcp_friendliness.cpp.o"
  "CMakeFiles/bench_ext_tcp_friendliness.dir/bench_ext_tcp_friendliness.cpp.o.d"
  "bench_ext_tcp_friendliness"
  "bench_ext_tcp_friendliness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tcp_friendliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
