# Empty dependencies file for bench_fig14_framerate_enc.
# This may be replaced when dependencies are built.
