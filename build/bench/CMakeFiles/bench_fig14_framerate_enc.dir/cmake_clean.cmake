file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_framerate_enc.dir/bench_fig14_framerate_enc.cpp.o"
  "CMakeFiles/bench_fig14_framerate_enc.dir/bench_fig14_framerate_enc.cpp.o.d"
  "bench_fig14_framerate_enc"
  "bench_fig14_framerate_enc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_framerate_enc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
