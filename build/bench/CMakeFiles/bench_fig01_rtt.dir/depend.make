# Empty dependencies file for bench_fig01_rtt.
# This may be replaced when dependencies are built.
