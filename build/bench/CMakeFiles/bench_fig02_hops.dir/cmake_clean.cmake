file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_hops.dir/bench_fig02_hops.cpp.o"
  "CMakeFiles/bench_fig02_hops.dir/bench_fig02_hops.cpp.o.d"
  "bench_fig02_hops"
  "bench_fig02_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
