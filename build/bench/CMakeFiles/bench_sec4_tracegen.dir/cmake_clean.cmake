file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_tracegen.dir/bench_sec4_tracegen.cpp.o"
  "CMakeFiles/bench_sec4_tracegen.dir/bench_sec4_tracegen.cpp.o.d"
  "bench_sec4_tracegen"
  "bench_sec4_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
