# Empty compiler generated dependencies file for bench_sec4_tracegen.
# This may be replaced when dependencies are built.
