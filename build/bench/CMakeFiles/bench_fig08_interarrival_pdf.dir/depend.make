# Empty dependencies file for bench_fig08_interarrival_pdf.
# This may be replaced when dependencies are built.
