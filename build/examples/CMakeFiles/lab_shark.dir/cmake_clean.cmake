file(REMOVE_RECURSE
  "CMakeFiles/lab_shark.dir/lab_shark.cpp.o"
  "CMakeFiles/lab_shark.dir/lab_shark.cpp.o.d"
  "lab_shark"
  "lab_shark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_shark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
