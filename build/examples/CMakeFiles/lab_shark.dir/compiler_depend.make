# Empty compiler generated dependencies file for lab_shark.
# This may be replaced when dependencies are built.
