# Empty dependencies file for capture_filter.
# This may be replaced when dependencies are built.
