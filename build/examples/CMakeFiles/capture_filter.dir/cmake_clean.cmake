file(REMOVE_RECURSE
  "CMakeFiles/capture_filter.dir/capture_filter.cpp.o"
  "CMakeFiles/capture_filter.dir/capture_filter.cpp.o.d"
  "capture_filter"
  "capture_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
