# Empty dependencies file for synthesize_traffic.
# This may be replaced when dependencies are built.
