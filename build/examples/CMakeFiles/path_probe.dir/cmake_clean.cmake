file(REMOVE_RECURSE
  "CMakeFiles/path_probe.dir/path_probe.cpp.o"
  "CMakeFiles/path_probe.dir/path_probe.cpp.o.d"
  "path_probe"
  "path_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
