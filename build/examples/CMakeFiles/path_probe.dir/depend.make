# Empty dependencies file for path_probe.
# This may be replaced when dependencies are built.
