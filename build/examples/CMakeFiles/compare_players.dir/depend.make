# Empty dependencies file for compare_players.
# This may be replaced when dependencies are built.
