file(REMOVE_RECURSE
  "CMakeFiles/compare_players.dir/compare_players.cpp.o"
  "CMakeFiles/compare_players.dir/compare_players.cpp.o.d"
  "compare_players"
  "compare_players.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_players.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
