# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/streamlab_tests_util[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_net[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_sim[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_pcap[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_dissect[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_filter[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_media[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_players[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_trackers[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_analysis[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_tracegen[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_core[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_tcp[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_congestion[1]_include.cmake")
include("/root/repo/build/tests/streamlab_tests_integration[1]_include.cmake")
