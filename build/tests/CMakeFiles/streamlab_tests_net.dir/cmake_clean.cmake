file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_net.dir/net/test_address.cpp.o"
  "CMakeFiles/streamlab_tests_net.dir/net/test_address.cpp.o.d"
  "CMakeFiles/streamlab_tests_net.dir/net/test_checksum.cpp.o"
  "CMakeFiles/streamlab_tests_net.dir/net/test_checksum.cpp.o.d"
  "CMakeFiles/streamlab_tests_net.dir/net/test_fragmentation.cpp.o"
  "CMakeFiles/streamlab_tests_net.dir/net/test_fragmentation.cpp.o.d"
  "CMakeFiles/streamlab_tests_net.dir/net/test_headers.cpp.o"
  "CMakeFiles/streamlab_tests_net.dir/net/test_headers.cpp.o.d"
  "CMakeFiles/streamlab_tests_net.dir/net/test_packet.cpp.o"
  "CMakeFiles/streamlab_tests_net.dir/net/test_packet.cpp.o.d"
  "streamlab_tests_net"
  "streamlab_tests_net.pdb"
  "streamlab_tests_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
