# Empty compiler generated dependencies file for streamlab_tests_net.
# This may be replaced when dependencies are built.
