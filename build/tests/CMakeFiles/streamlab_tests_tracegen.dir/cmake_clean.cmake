file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_tracegen.dir/tracegen/placeholder.cpp.o"
  "CMakeFiles/streamlab_tests_tracegen.dir/tracegen/placeholder.cpp.o.d"
  "CMakeFiles/streamlab_tests_tracegen.dir/tracegen/test_generator.cpp.o"
  "CMakeFiles/streamlab_tests_tracegen.dir/tracegen/test_generator.cpp.o.d"
  "CMakeFiles/streamlab_tests_tracegen.dir/tracegen/test_model.cpp.o"
  "CMakeFiles/streamlab_tests_tracegen.dir/tracegen/test_model.cpp.o.d"
  "CMakeFiles/streamlab_tests_tracegen.dir/tracegen/test_ns_trace.cpp.o"
  "CMakeFiles/streamlab_tests_tracegen.dir/tracegen/test_ns_trace.cpp.o.d"
  "streamlab_tests_tracegen"
  "streamlab_tests_tracegen.pdb"
  "streamlab_tests_tracegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
