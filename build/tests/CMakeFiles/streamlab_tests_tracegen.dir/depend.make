# Empty dependencies file for streamlab_tests_tracegen.
# This may be replaced when dependencies are built.
