file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_core.dir/core/test_aggregate.cpp.o"
  "CMakeFiles/streamlab_tests_core.dir/core/test_aggregate.cpp.o.d"
  "CMakeFiles/streamlab_tests_core.dir/core/test_export.cpp.o"
  "CMakeFiles/streamlab_tests_core.dir/core/test_export.cpp.o.d"
  "CMakeFiles/streamlab_tests_core.dir/core/test_render.cpp.o"
  "CMakeFiles/streamlab_tests_core.dir/core/test_render.cpp.o.d"
  "streamlab_tests_core"
  "streamlab_tests_core.pdb"
  "streamlab_tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
