# Empty compiler generated dependencies file for streamlab_tests_core.
# This may be replaced when dependencies are built.
