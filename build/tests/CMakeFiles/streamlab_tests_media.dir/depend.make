# Empty dependencies file for streamlab_tests_media.
# This may be replaced when dependencies are built.
