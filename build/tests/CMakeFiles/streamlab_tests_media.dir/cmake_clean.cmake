file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_media.dir/media/placeholder.cpp.o"
  "CMakeFiles/streamlab_tests_media.dir/media/placeholder.cpp.o.d"
  "CMakeFiles/streamlab_tests_media.dir/media/test_catalog.cpp.o"
  "CMakeFiles/streamlab_tests_media.dir/media/test_catalog.cpp.o.d"
  "CMakeFiles/streamlab_tests_media.dir/media/test_encoder.cpp.o"
  "CMakeFiles/streamlab_tests_media.dir/media/test_encoder.cpp.o.d"
  "streamlab_tests_media"
  "streamlab_tests_media.pdb"
  "streamlab_tests_media[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
