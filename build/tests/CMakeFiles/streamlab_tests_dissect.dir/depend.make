# Empty dependencies file for streamlab_tests_dissect.
# This may be replaced when dependencies are built.
