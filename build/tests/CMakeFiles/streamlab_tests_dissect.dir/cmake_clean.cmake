file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_dissect.dir/dissect/placeholder.cpp.o"
  "CMakeFiles/streamlab_tests_dissect.dir/dissect/placeholder.cpp.o.d"
  "CMakeFiles/streamlab_tests_dissect.dir/dissect/test_conversations.cpp.o"
  "CMakeFiles/streamlab_tests_dissect.dir/dissect/test_conversations.cpp.o.d"
  "CMakeFiles/streamlab_tests_dissect.dir/dissect/test_dissect_fuzz.cpp.o"
  "CMakeFiles/streamlab_tests_dissect.dir/dissect/test_dissect_fuzz.cpp.o.d"
  "CMakeFiles/streamlab_tests_dissect.dir/dissect/test_dissector.cpp.o"
  "CMakeFiles/streamlab_tests_dissect.dir/dissect/test_dissector.cpp.o.d"
  "streamlab_tests_dissect"
  "streamlab_tests_dissect.pdb"
  "streamlab_tests_dissect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_dissect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
