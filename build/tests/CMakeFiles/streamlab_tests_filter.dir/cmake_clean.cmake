file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_filter.dir/filter/placeholder.cpp.o"
  "CMakeFiles/streamlab_tests_filter.dir/filter/placeholder.cpp.o.d"
  "CMakeFiles/streamlab_tests_filter.dir/filter/test_evaluator.cpp.o"
  "CMakeFiles/streamlab_tests_filter.dir/filter/test_evaluator.cpp.o.d"
  "CMakeFiles/streamlab_tests_filter.dir/filter/test_fuzz.cpp.o"
  "CMakeFiles/streamlab_tests_filter.dir/filter/test_fuzz.cpp.o.d"
  "CMakeFiles/streamlab_tests_filter.dir/filter/test_lexer.cpp.o"
  "CMakeFiles/streamlab_tests_filter.dir/filter/test_lexer.cpp.o.d"
  "CMakeFiles/streamlab_tests_filter.dir/filter/test_parser.cpp.o"
  "CMakeFiles/streamlab_tests_filter.dir/filter/test_parser.cpp.o.d"
  "streamlab_tests_filter"
  "streamlab_tests_filter.pdb"
  "streamlab_tests_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
