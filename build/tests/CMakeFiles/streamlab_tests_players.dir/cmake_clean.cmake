file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_players.dir/players/placeholder.cpp.o"
  "CMakeFiles/streamlab_tests_players.dir/players/placeholder.cpp.o.d"
  "CMakeFiles/streamlab_tests_players.dir/players/test_behavior.cpp.o"
  "CMakeFiles/streamlab_tests_players.dir/players/test_behavior.cpp.o.d"
  "CMakeFiles/streamlab_tests_players.dir/players/test_client.cpp.o"
  "CMakeFiles/streamlab_tests_players.dir/players/test_client.cpp.o.d"
  "CMakeFiles/streamlab_tests_players.dir/players/test_client_robustness.cpp.o"
  "CMakeFiles/streamlab_tests_players.dir/players/test_client_robustness.cpp.o.d"
  "CMakeFiles/streamlab_tests_players.dir/players/test_protocol.cpp.o"
  "CMakeFiles/streamlab_tests_players.dir/players/test_protocol.cpp.o.d"
  "CMakeFiles/streamlab_tests_players.dir/players/test_rebuffering.cpp.o"
  "CMakeFiles/streamlab_tests_players.dir/players/test_rebuffering.cpp.o.d"
  "CMakeFiles/streamlab_tests_players.dir/players/test_scaling.cpp.o"
  "CMakeFiles/streamlab_tests_players.dir/players/test_scaling.cpp.o.d"
  "CMakeFiles/streamlab_tests_players.dir/players/test_server.cpp.o"
  "CMakeFiles/streamlab_tests_players.dir/players/test_server.cpp.o.d"
  "streamlab_tests_players"
  "streamlab_tests_players.pdb"
  "streamlab_tests_players[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_players.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
