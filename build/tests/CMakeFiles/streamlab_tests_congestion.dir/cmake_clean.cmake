file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_congestion.dir/congestion/test_congestion.cpp.o"
  "CMakeFiles/streamlab_tests_congestion.dir/congestion/test_congestion.cpp.o.d"
  "CMakeFiles/streamlab_tests_congestion.dir/congestion/test_friendliness.cpp.o"
  "CMakeFiles/streamlab_tests_congestion.dir/congestion/test_friendliness.cpp.o.d"
  "streamlab_tests_congestion"
  "streamlab_tests_congestion.pdb"
  "streamlab_tests_congestion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
