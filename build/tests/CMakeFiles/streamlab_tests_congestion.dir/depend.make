# Empty dependencies file for streamlab_tests_congestion.
# This may be replaced when dependencies are built.
