file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_trackers.dir/trackers/placeholder.cpp.o"
  "CMakeFiles/streamlab_tests_trackers.dir/trackers/placeholder.cpp.o.d"
  "CMakeFiles/streamlab_tests_trackers.dir/trackers/test_playlist.cpp.o"
  "CMakeFiles/streamlab_tests_trackers.dir/trackers/test_playlist.cpp.o.d"
  "CMakeFiles/streamlab_tests_trackers.dir/trackers/test_tracker.cpp.o"
  "CMakeFiles/streamlab_tests_trackers.dir/trackers/test_tracker.cpp.o.d"
  "streamlab_tests_trackers"
  "streamlab_tests_trackers.pdb"
  "streamlab_tests_trackers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_trackers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
