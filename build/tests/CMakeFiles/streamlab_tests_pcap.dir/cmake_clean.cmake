file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_pcap.dir/pcap/placeholder.cpp.o"
  "CMakeFiles/streamlab_tests_pcap.dir/pcap/placeholder.cpp.o.d"
  "CMakeFiles/streamlab_tests_pcap.dir/pcap/test_capture.cpp.o"
  "CMakeFiles/streamlab_tests_pcap.dir/pcap/test_capture.cpp.o.d"
  "CMakeFiles/streamlab_tests_pcap.dir/pcap/test_pcap_file.cpp.o"
  "CMakeFiles/streamlab_tests_pcap.dir/pcap/test_pcap_file.cpp.o.d"
  "CMakeFiles/streamlab_tests_pcap.dir/pcap/test_sniffer.cpp.o"
  "CMakeFiles/streamlab_tests_pcap.dir/pcap/test_sniffer.cpp.o.d"
  "streamlab_tests_pcap"
  "streamlab_tests_pcap.pdb"
  "streamlab_tests_pcap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
