# Empty compiler generated dependencies file for streamlab_tests_pcap.
# This may be replaced when dependencies are built.
