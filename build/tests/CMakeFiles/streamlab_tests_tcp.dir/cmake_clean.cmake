file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_tcp.dir/tcp/test_tcp.cpp.o"
  "CMakeFiles/streamlab_tests_tcp.dir/tcp/test_tcp.cpp.o.d"
  "streamlab_tests_tcp"
  "streamlab_tests_tcp.pdb"
  "streamlab_tests_tcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
