# Empty compiler generated dependencies file for streamlab_tests_tcp.
# This may be replaced when dependencies are built.
