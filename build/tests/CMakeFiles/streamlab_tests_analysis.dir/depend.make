# Empty dependencies file for streamlab_tests_analysis.
# This may be replaced when dependencies are built.
