file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/placeholder.cpp.o"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/placeholder.cpp.o.d"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_bandwidth.cpp.o"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_bandwidth.cpp.o.d"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_burstiness.cpp.o"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_burstiness.cpp.o.d"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_flow.cpp.o"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_flow.cpp.o.d"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_histogram.cpp.o"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_histogram.cpp.o.d"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_jitter.cpp.o"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_jitter.cpp.o.d"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_polyfit.cpp.o"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_polyfit.cpp.o.d"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_stats.cpp.o"
  "CMakeFiles/streamlab_tests_analysis.dir/analysis/test_stats.cpp.o.d"
  "streamlab_tests_analysis"
  "streamlab_tests_analysis.pdb"
  "streamlab_tests_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
