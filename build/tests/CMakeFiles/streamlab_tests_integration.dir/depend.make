# Empty dependencies file for streamlab_tests_integration.
# This may be replaced when dependencies are built.
