file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_integration.dir/integration/placeholder.cpp.o"
  "CMakeFiles/streamlab_tests_integration.dir/integration/placeholder.cpp.o.d"
  "CMakeFiles/streamlab_tests_integration.dir/integration/test_experiment.cpp.o"
  "CMakeFiles/streamlab_tests_integration.dir/integration/test_experiment.cpp.o.d"
  "CMakeFiles/streamlab_tests_integration.dir/integration/test_figures.cpp.o"
  "CMakeFiles/streamlab_tests_integration.dir/integration/test_figures.cpp.o.d"
  "CMakeFiles/streamlab_tests_integration.dir/integration/test_study_claims.cpp.o"
  "CMakeFiles/streamlab_tests_integration.dir/integration/test_study_claims.cpp.o.d"
  "CMakeFiles/streamlab_tests_integration.dir/integration/test_turbulence.cpp.o"
  "CMakeFiles/streamlab_tests_integration.dir/integration/test_turbulence.cpp.o.d"
  "streamlab_tests_integration"
  "streamlab_tests_integration.pdb"
  "streamlab_tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
