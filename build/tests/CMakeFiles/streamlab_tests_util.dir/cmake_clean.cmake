file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_util.dir/util/test_bytes.cpp.o"
  "CMakeFiles/streamlab_tests_util.dir/util/test_bytes.cpp.o.d"
  "CMakeFiles/streamlab_tests_util.dir/util/test_expected.cpp.o"
  "CMakeFiles/streamlab_tests_util.dir/util/test_expected.cpp.o.d"
  "CMakeFiles/streamlab_tests_util.dir/util/test_interval_set.cpp.o"
  "CMakeFiles/streamlab_tests_util.dir/util/test_interval_set.cpp.o.d"
  "CMakeFiles/streamlab_tests_util.dir/util/test_rate.cpp.o"
  "CMakeFiles/streamlab_tests_util.dir/util/test_rate.cpp.o.d"
  "CMakeFiles/streamlab_tests_util.dir/util/test_rng.cpp.o"
  "CMakeFiles/streamlab_tests_util.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/streamlab_tests_util.dir/util/test_strings.cpp.o"
  "CMakeFiles/streamlab_tests_util.dir/util/test_strings.cpp.o.d"
  "CMakeFiles/streamlab_tests_util.dir/util/test_time.cpp.o"
  "CMakeFiles/streamlab_tests_util.dir/util/test_time.cpp.o.d"
  "streamlab_tests_util"
  "streamlab_tests_util.pdb"
  "streamlab_tests_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
