
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_bytes.cpp" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_bytes.cpp.o.d"
  "/root/repo/tests/util/test_expected.cpp" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_expected.cpp.o" "gcc" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_expected.cpp.o.d"
  "/root/repo/tests/util/test_interval_set.cpp" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_interval_set.cpp.o" "gcc" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_interval_set.cpp.o.d"
  "/root/repo/tests/util/test_rate.cpp" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_rate.cpp.o" "gcc" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_rate.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_strings.cpp" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_strings.cpp.o" "gcc" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_strings.cpp.o.d"
  "/root/repo/tests/util/test_time.cpp" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_time.cpp.o" "gcc" "tests/CMakeFiles/streamlab_tests_util.dir/util/test_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/streamlab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tracegen/CMakeFiles/streamlab_tracegen.dir/DependInfo.cmake"
  "/root/repo/build/src/congestion/CMakeFiles/streamlab_congestion.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/streamlab_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/trackers/CMakeFiles/streamlab_trackers.dir/DependInfo.cmake"
  "/root/repo/build/src/players/CMakeFiles/streamlab_players.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/streamlab_media.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/streamlab_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/streamlab_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/dissect/CMakeFiles/streamlab_dissect.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/streamlab_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/streamlab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/streamlab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/streamlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
