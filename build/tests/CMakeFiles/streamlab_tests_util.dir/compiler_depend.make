# Empty compiler generated dependencies file for streamlab_tests_util.
# This may be replaced when dependencies are built.
