# Empty dependencies file for streamlab_tests_sim.
# This may be replaced when dependencies are built.
