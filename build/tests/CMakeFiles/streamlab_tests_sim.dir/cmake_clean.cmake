file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tests_sim.dir/sim/placeholder.cpp.o"
  "CMakeFiles/streamlab_tests_sim.dir/sim/placeholder.cpp.o.d"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_event_loop.cpp.o"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_event_loop.cpp.o.d"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_host.cpp.o"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_host.cpp.o.d"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_link.cpp.o"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_link.cpp.o.d"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_network.cpp.o"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_network.cpp.o.d"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_router.cpp.o"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_router.cpp.o.d"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_tools.cpp.o"
  "CMakeFiles/streamlab_tests_sim.dir/sim/test_tools.cpp.o.d"
  "streamlab_tests_sim"
  "streamlab_tests_sim.pdb"
  "streamlab_tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
