file(REMOVE_RECURSE
  "CMakeFiles/streamlab_core.dir/aggregate.cpp.o"
  "CMakeFiles/streamlab_core.dir/aggregate.cpp.o.d"
  "CMakeFiles/streamlab_core.dir/experiment.cpp.o"
  "CMakeFiles/streamlab_core.dir/experiment.cpp.o.d"
  "CMakeFiles/streamlab_core.dir/export.cpp.o"
  "CMakeFiles/streamlab_core.dir/export.cpp.o.d"
  "CMakeFiles/streamlab_core.dir/figures.cpp.o"
  "CMakeFiles/streamlab_core.dir/figures.cpp.o.d"
  "CMakeFiles/streamlab_core.dir/render.cpp.o"
  "CMakeFiles/streamlab_core.dir/render.cpp.o.d"
  "CMakeFiles/streamlab_core.dir/study.cpp.o"
  "CMakeFiles/streamlab_core.dir/study.cpp.o.d"
  "libstreamlab_core.a"
  "libstreamlab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
