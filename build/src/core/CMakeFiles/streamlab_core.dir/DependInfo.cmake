
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cpp" "src/core/CMakeFiles/streamlab_core.dir/aggregate.cpp.o" "gcc" "src/core/CMakeFiles/streamlab_core.dir/aggregate.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/streamlab_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/streamlab_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/streamlab_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/streamlab_core.dir/export.cpp.o.d"
  "/root/repo/src/core/figures.cpp" "src/core/CMakeFiles/streamlab_core.dir/figures.cpp.o" "gcc" "src/core/CMakeFiles/streamlab_core.dir/figures.cpp.o.d"
  "/root/repo/src/core/render.cpp" "src/core/CMakeFiles/streamlab_core.dir/render.cpp.o" "gcc" "src/core/CMakeFiles/streamlab_core.dir/render.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/streamlab_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/streamlab_core.dir/study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/players/CMakeFiles/streamlab_players.dir/DependInfo.cmake"
  "/root/repo/build/src/trackers/CMakeFiles/streamlab_trackers.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/streamlab_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/streamlab_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/streamlab_media.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/streamlab_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/dissect/CMakeFiles/streamlab_dissect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/streamlab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/streamlab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/streamlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
