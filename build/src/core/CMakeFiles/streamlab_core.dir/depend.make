# Empty dependencies file for streamlab_core.
# This may be replaced when dependencies are built.
