file(REMOVE_RECURSE
  "libstreamlab_core.a"
)
