file(REMOVE_RECURSE
  "CMakeFiles/streamlab_media.dir/catalog.cpp.o"
  "CMakeFiles/streamlab_media.dir/catalog.cpp.o.d"
  "CMakeFiles/streamlab_media.dir/clip.cpp.o"
  "CMakeFiles/streamlab_media.dir/clip.cpp.o.d"
  "CMakeFiles/streamlab_media.dir/encoder.cpp.o"
  "CMakeFiles/streamlab_media.dir/encoder.cpp.o.d"
  "libstreamlab_media.a"
  "libstreamlab_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
