# Empty compiler generated dependencies file for streamlab_media.
# This may be replaced when dependencies are built.
