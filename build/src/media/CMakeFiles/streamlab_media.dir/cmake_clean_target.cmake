file(REMOVE_RECURSE
  "libstreamlab_media.a"
)
