# Empty compiler generated dependencies file for streamlab_congestion.
# This may be replaced when dependencies are built.
