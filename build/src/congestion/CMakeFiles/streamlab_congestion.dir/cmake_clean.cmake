file(REMOVE_RECURSE
  "CMakeFiles/streamlab_congestion.dir/experiment.cpp.o"
  "CMakeFiles/streamlab_congestion.dir/experiment.cpp.o.d"
  "CMakeFiles/streamlab_congestion.dir/friendliness.cpp.o"
  "CMakeFiles/streamlab_congestion.dir/friendliness.cpp.o.d"
  "libstreamlab_congestion.a"
  "libstreamlab_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
