file(REMOVE_RECURSE
  "libstreamlab_congestion.a"
)
