file(REMOVE_RECURSE
  "CMakeFiles/streamlab_util.dir/bytes.cpp.o"
  "CMakeFiles/streamlab_util.dir/bytes.cpp.o.d"
  "CMakeFiles/streamlab_util.dir/rng.cpp.o"
  "CMakeFiles/streamlab_util.dir/rng.cpp.o.d"
  "CMakeFiles/streamlab_util.dir/strings.cpp.o"
  "CMakeFiles/streamlab_util.dir/strings.cpp.o.d"
  "libstreamlab_util.a"
  "libstreamlab_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
