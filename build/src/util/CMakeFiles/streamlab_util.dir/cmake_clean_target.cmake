file(REMOVE_RECURSE
  "libstreamlab_util.a"
)
