# Empty compiler generated dependencies file for streamlab_util.
# This may be replaced when dependencies are built.
