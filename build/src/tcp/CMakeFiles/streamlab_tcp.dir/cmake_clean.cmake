file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tcp.dir/demux.cpp.o"
  "CMakeFiles/streamlab_tcp.dir/demux.cpp.o.d"
  "CMakeFiles/streamlab_tcp.dir/receiver.cpp.o"
  "CMakeFiles/streamlab_tcp.dir/receiver.cpp.o.d"
  "CMakeFiles/streamlab_tcp.dir/sender.cpp.o"
  "CMakeFiles/streamlab_tcp.dir/sender.cpp.o.d"
  "libstreamlab_tcp.a"
  "libstreamlab_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
