file(REMOVE_RECURSE
  "libstreamlab_tcp.a"
)
