file(REMOVE_RECURSE
  "CMakeFiles/streamlab_dissect.dir/conversations.cpp.o"
  "CMakeFiles/streamlab_dissect.dir/conversations.cpp.o.d"
  "CMakeFiles/streamlab_dissect.dir/dissector.cpp.o"
  "CMakeFiles/streamlab_dissect.dir/dissector.cpp.o.d"
  "libstreamlab_dissect.a"
  "libstreamlab_dissect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_dissect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
