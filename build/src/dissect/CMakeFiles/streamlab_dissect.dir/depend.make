# Empty dependencies file for streamlab_dissect.
# This may be replaced when dependencies are built.
