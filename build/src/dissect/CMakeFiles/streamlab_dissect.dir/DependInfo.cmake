
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dissect/conversations.cpp" "src/dissect/CMakeFiles/streamlab_dissect.dir/conversations.cpp.o" "gcc" "src/dissect/CMakeFiles/streamlab_dissect.dir/conversations.cpp.o.d"
  "/root/repo/src/dissect/dissector.cpp" "src/dissect/CMakeFiles/streamlab_dissect.dir/dissector.cpp.o" "gcc" "src/dissect/CMakeFiles/streamlab_dissect.dir/dissector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcap/CMakeFiles/streamlab_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/streamlab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/streamlab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/streamlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
