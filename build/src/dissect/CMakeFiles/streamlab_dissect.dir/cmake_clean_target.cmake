file(REMOVE_RECURSE
  "libstreamlab_dissect.a"
)
