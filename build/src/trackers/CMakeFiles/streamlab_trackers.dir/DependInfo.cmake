
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trackers/playlist.cpp" "src/trackers/CMakeFiles/streamlab_trackers.dir/playlist.cpp.o" "gcc" "src/trackers/CMakeFiles/streamlab_trackers.dir/playlist.cpp.o.d"
  "/root/repo/src/trackers/report.cpp" "src/trackers/CMakeFiles/streamlab_trackers.dir/report.cpp.o" "gcc" "src/trackers/CMakeFiles/streamlab_trackers.dir/report.cpp.o.d"
  "/root/repo/src/trackers/tracker.cpp" "src/trackers/CMakeFiles/streamlab_trackers.dir/tracker.cpp.o" "gcc" "src/trackers/CMakeFiles/streamlab_trackers.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/players/CMakeFiles/streamlab_players.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/streamlab_media.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/streamlab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/streamlab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/streamlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
