# Empty compiler generated dependencies file for streamlab_trackers.
# This may be replaced when dependencies are built.
