file(REMOVE_RECURSE
  "libstreamlab_trackers.a"
)
