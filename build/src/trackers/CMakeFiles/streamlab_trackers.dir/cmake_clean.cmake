file(REMOVE_RECURSE
  "CMakeFiles/streamlab_trackers.dir/playlist.cpp.o"
  "CMakeFiles/streamlab_trackers.dir/playlist.cpp.o.d"
  "CMakeFiles/streamlab_trackers.dir/report.cpp.o"
  "CMakeFiles/streamlab_trackers.dir/report.cpp.o.d"
  "CMakeFiles/streamlab_trackers.dir/tracker.cpp.o"
  "CMakeFiles/streamlab_trackers.dir/tracker.cpp.o.d"
  "libstreamlab_trackers.a"
  "libstreamlab_trackers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_trackers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
