# Empty dependencies file for streamlab_net.
# This may be replaced when dependencies are built.
