file(REMOVE_RECURSE
  "libstreamlab_net.a"
)
