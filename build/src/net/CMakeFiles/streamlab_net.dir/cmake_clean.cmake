file(REMOVE_RECURSE
  "CMakeFiles/streamlab_net.dir/address.cpp.o"
  "CMakeFiles/streamlab_net.dir/address.cpp.o.d"
  "CMakeFiles/streamlab_net.dir/checksum.cpp.o"
  "CMakeFiles/streamlab_net.dir/checksum.cpp.o.d"
  "CMakeFiles/streamlab_net.dir/fragmentation.cpp.o"
  "CMakeFiles/streamlab_net.dir/fragmentation.cpp.o.d"
  "CMakeFiles/streamlab_net.dir/headers.cpp.o"
  "CMakeFiles/streamlab_net.dir/headers.cpp.o.d"
  "CMakeFiles/streamlab_net.dir/packet.cpp.o"
  "CMakeFiles/streamlab_net.dir/packet.cpp.o.d"
  "libstreamlab_net.a"
  "libstreamlab_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
