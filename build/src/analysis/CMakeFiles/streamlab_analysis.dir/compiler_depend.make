# Empty compiler generated dependencies file for streamlab_analysis.
# This may be replaced when dependencies are built.
