file(REMOVE_RECURSE
  "CMakeFiles/streamlab_analysis.dir/bandwidth.cpp.o"
  "CMakeFiles/streamlab_analysis.dir/bandwidth.cpp.o.d"
  "CMakeFiles/streamlab_analysis.dir/burstiness.cpp.o"
  "CMakeFiles/streamlab_analysis.dir/burstiness.cpp.o.d"
  "CMakeFiles/streamlab_analysis.dir/flow.cpp.o"
  "CMakeFiles/streamlab_analysis.dir/flow.cpp.o.d"
  "CMakeFiles/streamlab_analysis.dir/histogram.cpp.o"
  "CMakeFiles/streamlab_analysis.dir/histogram.cpp.o.d"
  "CMakeFiles/streamlab_analysis.dir/jitter.cpp.o"
  "CMakeFiles/streamlab_analysis.dir/jitter.cpp.o.d"
  "CMakeFiles/streamlab_analysis.dir/polyfit.cpp.o"
  "CMakeFiles/streamlab_analysis.dir/polyfit.cpp.o.d"
  "CMakeFiles/streamlab_analysis.dir/stats.cpp.o"
  "CMakeFiles/streamlab_analysis.dir/stats.cpp.o.d"
  "libstreamlab_analysis.a"
  "libstreamlab_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
