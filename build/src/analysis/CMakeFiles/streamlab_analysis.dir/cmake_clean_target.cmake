file(REMOVE_RECURSE
  "libstreamlab_analysis.a"
)
