
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bandwidth.cpp" "src/analysis/CMakeFiles/streamlab_analysis.dir/bandwidth.cpp.o" "gcc" "src/analysis/CMakeFiles/streamlab_analysis.dir/bandwidth.cpp.o.d"
  "/root/repo/src/analysis/burstiness.cpp" "src/analysis/CMakeFiles/streamlab_analysis.dir/burstiness.cpp.o" "gcc" "src/analysis/CMakeFiles/streamlab_analysis.dir/burstiness.cpp.o.d"
  "/root/repo/src/analysis/flow.cpp" "src/analysis/CMakeFiles/streamlab_analysis.dir/flow.cpp.o" "gcc" "src/analysis/CMakeFiles/streamlab_analysis.dir/flow.cpp.o.d"
  "/root/repo/src/analysis/histogram.cpp" "src/analysis/CMakeFiles/streamlab_analysis.dir/histogram.cpp.o" "gcc" "src/analysis/CMakeFiles/streamlab_analysis.dir/histogram.cpp.o.d"
  "/root/repo/src/analysis/jitter.cpp" "src/analysis/CMakeFiles/streamlab_analysis.dir/jitter.cpp.o" "gcc" "src/analysis/CMakeFiles/streamlab_analysis.dir/jitter.cpp.o.d"
  "/root/repo/src/analysis/polyfit.cpp" "src/analysis/CMakeFiles/streamlab_analysis.dir/polyfit.cpp.o" "gcc" "src/analysis/CMakeFiles/streamlab_analysis.dir/polyfit.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/streamlab_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/streamlab_analysis.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dissect/CMakeFiles/streamlab_dissect.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/streamlab_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/streamlab_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/streamlab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/streamlab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/streamlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
