# Empty compiler generated dependencies file for streamlab_players.
# This may be replaced when dependencies are built.
