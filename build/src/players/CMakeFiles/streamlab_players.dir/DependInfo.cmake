
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/players/behavior.cpp" "src/players/CMakeFiles/streamlab_players.dir/behavior.cpp.o" "gcc" "src/players/CMakeFiles/streamlab_players.dir/behavior.cpp.o.d"
  "/root/repo/src/players/client.cpp" "src/players/CMakeFiles/streamlab_players.dir/client.cpp.o" "gcc" "src/players/CMakeFiles/streamlab_players.dir/client.cpp.o.d"
  "/root/repo/src/players/protocol.cpp" "src/players/CMakeFiles/streamlab_players.dir/protocol.cpp.o" "gcc" "src/players/CMakeFiles/streamlab_players.dir/protocol.cpp.o.d"
  "/root/repo/src/players/scaling.cpp" "src/players/CMakeFiles/streamlab_players.dir/scaling.cpp.o" "gcc" "src/players/CMakeFiles/streamlab_players.dir/scaling.cpp.o.d"
  "/root/repo/src/players/server.cpp" "src/players/CMakeFiles/streamlab_players.dir/server.cpp.o" "gcc" "src/players/CMakeFiles/streamlab_players.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/media/CMakeFiles/streamlab_media.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/streamlab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/streamlab_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/streamlab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
