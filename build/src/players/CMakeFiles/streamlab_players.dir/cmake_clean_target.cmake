file(REMOVE_RECURSE
  "libstreamlab_players.a"
)
