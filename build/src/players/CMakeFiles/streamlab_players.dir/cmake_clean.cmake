file(REMOVE_RECURSE
  "CMakeFiles/streamlab_players.dir/behavior.cpp.o"
  "CMakeFiles/streamlab_players.dir/behavior.cpp.o.d"
  "CMakeFiles/streamlab_players.dir/client.cpp.o"
  "CMakeFiles/streamlab_players.dir/client.cpp.o.d"
  "CMakeFiles/streamlab_players.dir/protocol.cpp.o"
  "CMakeFiles/streamlab_players.dir/protocol.cpp.o.d"
  "CMakeFiles/streamlab_players.dir/scaling.cpp.o"
  "CMakeFiles/streamlab_players.dir/scaling.cpp.o.d"
  "CMakeFiles/streamlab_players.dir/server.cpp.o"
  "CMakeFiles/streamlab_players.dir/server.cpp.o.d"
  "libstreamlab_players.a"
  "libstreamlab_players.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_players.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
