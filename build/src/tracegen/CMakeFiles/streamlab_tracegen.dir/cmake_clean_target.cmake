file(REMOVE_RECURSE
  "libstreamlab_tracegen.a"
)
