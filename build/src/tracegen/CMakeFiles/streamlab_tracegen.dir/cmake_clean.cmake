file(REMOVE_RECURSE
  "CMakeFiles/streamlab_tracegen.dir/generator.cpp.o"
  "CMakeFiles/streamlab_tracegen.dir/generator.cpp.o.d"
  "CMakeFiles/streamlab_tracegen.dir/model.cpp.o"
  "CMakeFiles/streamlab_tracegen.dir/model.cpp.o.d"
  "CMakeFiles/streamlab_tracegen.dir/ns_trace.cpp.o"
  "CMakeFiles/streamlab_tracegen.dir/ns_trace.cpp.o.d"
  "libstreamlab_tracegen.a"
  "libstreamlab_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
