# Empty dependencies file for streamlab_tracegen.
# This may be replaced when dependencies are built.
