file(REMOVE_RECURSE
  "libstreamlab_pcap.a"
)
