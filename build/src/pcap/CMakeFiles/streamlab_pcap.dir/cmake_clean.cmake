file(REMOVE_RECURSE
  "CMakeFiles/streamlab_pcap.dir/capture.cpp.o"
  "CMakeFiles/streamlab_pcap.dir/capture.cpp.o.d"
  "CMakeFiles/streamlab_pcap.dir/pcap_file.cpp.o"
  "CMakeFiles/streamlab_pcap.dir/pcap_file.cpp.o.d"
  "CMakeFiles/streamlab_pcap.dir/sniffer.cpp.o"
  "CMakeFiles/streamlab_pcap.dir/sniffer.cpp.o.d"
  "libstreamlab_pcap.a"
  "libstreamlab_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
