# Empty dependencies file for streamlab_pcap.
# This may be replaced when dependencies are built.
