# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("net")
subdirs("sim")
subdirs("pcap")
subdirs("dissect")
subdirs("filter")
subdirs("media")
subdirs("players")
subdirs("trackers")
subdirs("analysis")
subdirs("tracegen")
subdirs("core")
subdirs("congestion")
subdirs("tcp")
