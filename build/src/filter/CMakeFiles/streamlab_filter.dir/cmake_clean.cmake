file(REMOVE_RECURSE
  "CMakeFiles/streamlab_filter.dir/evaluator.cpp.o"
  "CMakeFiles/streamlab_filter.dir/evaluator.cpp.o.d"
  "CMakeFiles/streamlab_filter.dir/lexer.cpp.o"
  "CMakeFiles/streamlab_filter.dir/lexer.cpp.o.d"
  "CMakeFiles/streamlab_filter.dir/parser.cpp.o"
  "CMakeFiles/streamlab_filter.dir/parser.cpp.o.d"
  "libstreamlab_filter.a"
  "libstreamlab_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
