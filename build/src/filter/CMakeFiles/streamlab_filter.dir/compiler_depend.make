# Empty compiler generated dependencies file for streamlab_filter.
# This may be replaced when dependencies are built.
