file(REMOVE_RECURSE
  "libstreamlab_filter.a"
)
