# Empty compiler generated dependencies file for streamlab_sim.
# This may be replaced when dependencies are built.
