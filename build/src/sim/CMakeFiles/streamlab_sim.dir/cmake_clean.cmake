file(REMOVE_RECURSE
  "CMakeFiles/streamlab_sim.dir/event_loop.cpp.o"
  "CMakeFiles/streamlab_sim.dir/event_loop.cpp.o.d"
  "CMakeFiles/streamlab_sim.dir/host.cpp.o"
  "CMakeFiles/streamlab_sim.dir/host.cpp.o.d"
  "CMakeFiles/streamlab_sim.dir/link.cpp.o"
  "CMakeFiles/streamlab_sim.dir/link.cpp.o.d"
  "CMakeFiles/streamlab_sim.dir/network.cpp.o"
  "CMakeFiles/streamlab_sim.dir/network.cpp.o.d"
  "CMakeFiles/streamlab_sim.dir/router.cpp.o"
  "CMakeFiles/streamlab_sim.dir/router.cpp.o.d"
  "CMakeFiles/streamlab_sim.dir/tools.cpp.o"
  "CMakeFiles/streamlab_sim.dir/tools.cpp.o.d"
  "libstreamlab_sim.a"
  "libstreamlab_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlab_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
