file(REMOVE_RECURSE
  "libstreamlab_sim.a"
)
